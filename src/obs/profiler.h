#ifndef LSCHED_OBS_PROFILER_H_
#define LSCHED_OBS_PROFILER_H_

// Resource profiling (DESIGN.md §8.3), three layers:
//
//  1. WorkerAccount — an ALWAYS-COMPILED per-worker state accountant.
//     Every worker thread (RealEngine) / simulated thread (SimEngine)
//     charges exact integer-ns to one of five states {dispatch-overhead,
//     executing, idle, stalled-on-dependency, draining}; the buckets
//     telescope to the thread's wall time by construction (each Transition
//     charges [last, now) to the *outgoing* state, so no nanosecond is
//     counted twice or dropped). The episode recorder aggregates them into
//     exec.worker<i>.*_seconds gauges and the scheduler-overhead-fraction
//     gauge — the paper's headline metric.
//
//  2. CounterTables — LeanStore-style per-subsystem counter tables
//     (sched decisions/sec, encoder cache hit rate, NN batch occupancy,
//     faultpoint fires, serve admission verdicts), registered
//     declaratively as value closures and rendered as an aligned-text
//     table with per-second rates between renders. Always compiled; the
//     closures read the metrics registry, which returns zeros when the
//     obs layer is compiled out.
//
//  3. SamplingProfiler — an OBS-gated background sampler that snapshots
//     every registered worker's current state at a configurable Hz into a
//     bounded ring, exportable as CSV and rendered by `lsched_cli top
//     --profile`. Compiles to an inert stub with -DLSCHED_OBS=OFF.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace lsched {
namespace prof {

// --- 1. per-worker state accountant (always compiled) ---------------------

enum class WorkerState : uint8_t {
  kDispatch = 0,  ///< scheduler/coordinator handoff + completion plumbing
  kExecuting = 1, ///< running a work-order kernel
  kIdle = 2,      ///< no runnable work anywhere
  kStalled = 3,   ///< work exists but is blocked on a dependency
  kDraining = 4,  ///< shutdown/drain window
};
inline constexpr int kNumWorkerStates = 5;

/// Short machine-friendly names: dispatch_overhead, executing, idle,
/// stalled, draining (index by static_cast<int>(state)).
const char* WorkerStateName(WorkerState s);
/// Parses a WorkerStateName back; returns false on unknown names.
bool ParseWorkerState(const std::string& name, WorkerState* out);

struct WorkerStateBuckets {
  int64_t ns[kNumWorkerStates] = {0, 0, 0, 0, 0};
  int64_t wall_ns = 0;

  int64_t SumNs() const {
    int64_t sum = 0;
    for (int64_t v : ns) sum += v;
    return sum;
  }
};

/// Single-writer accountant: the owning thread calls Start/Transition/Stop;
/// any thread may call Read()/current() concurrently (relaxed atomics — a
/// live snapshot may be mid-transition by a bucket, which is fine for
/// gauges and the sampling profiler; reads after the owner stopped and was
/// joined are exact).
class WorkerAccount {
 public:
  WorkerAccount() = default;
  WorkerAccount(const WorkerAccount&) = delete;
  WorkerAccount& operator=(const WorkerAccount&) = delete;

  /// Begins accounting at `now_ns` in `initial`; resets all buckets.
  void Start(int64_t now_ns, WorkerState initial);

  /// Charges [last, max(last, now_ns)) to the current state, then switches
  /// to `next`. Clamping makes slightly out-of-order timestamps (e.g. a
  /// dispatch issued-at read after the worker's own clock read) safe: the
  /// telescoping invariant holds regardless.
  void Transition(WorkerState next, int64_t now_ns);

  /// Final charge up to `now_ns`; the account keeps its buckets readable.
  void Stop(int64_t now_ns);

  bool started() const { return started_.load(std::memory_order_acquire); }
  WorkerState current() const {
    return static_cast<WorkerState>(state_.load(std::memory_order_relaxed));
  }
  WorkerStateBuckets Read() const;

 private:
  std::atomic<int64_t> ns_[kNumWorkerStates] = {};
  std::atomic<int64_t> wall_ns_{0};
  std::atomic<uint8_t> state_{static_cast<uint8_t>(WorkerState::kIdle)};
  std::atomic<bool> started_{false};
  // Owner-thread-only bookkeeping.
  int64_t start_ns_ = 0;
  int64_t last_ns_ = 0;
};

// --- 2. per-subsystem counter tables (always compiled) --------------------

class CounterTables {
 public:
  static CounterTables& Global();

  /// Adds a row to `table` (created on first use, order preserved).
  /// `value` is sampled at Render time; `rated` rows additionally show a
  /// per-second rate since the previous Render. Re-registering an existing
  /// (table, label) pair replaces the closure.
  void Register(const std::string& table, const std::string& label,
                std::function<double()> value, bool rated = true);

  /// Aligned-text dump of every table:
  ///   [sched]
  ///     decisions            12345      617.2/s
  /// Rates are computed against the previous Render call (first call shows
  /// "-"). Thread-safe.
  std::string Render();

  /// Forgets rate baselines (next Render shows "-" rates) — used by tests.
  void ResetRates();

 private:
  CounterTables() = default;
  struct Row {
    std::string label;
    std::function<double()> fn;
    bool rated = true;
    double last = 0.0;
    bool have_last = false;
  };
  struct Table {
    std::string name;
    std::vector<Row> rows;
  };
  std::vector<Table> tables_;
  double last_render_micros_ = 0.0;
  bool have_render_time_ = false;
  std::mutex mu_;
};

/// Registers the default subsystem tables (sched, encoder, nn, exec,
/// faults, serve) against the global metrics registry. Idempotent.
void RegisterDefaultCounterTables();

// --- 3. sampling profiler (OBS-gated) -------------------------------------

struct ProfileSample {
  int64_t t_us = 0;  ///< obs::NowMicros() at sampling time
  int32_t worker = 0;
  WorkerState state = WorkerState::kIdle;
  std::string engine;
};

/// CSV schema: t_us,engine,worker,state (header row included).
std::string ProfileSamplesToCsv(const std::vector<ProfileSample>& samples);
bool ParseProfileCsv(const std::string& text, std::vector<ProfileSample>* out);

/// Per-(engine, worker) state-occupancy summary of a sample set — the
/// rendering behind `lsched_cli top --profile=<csv>`. Always compiled so
/// OFF builds can still render a CSV captured elsewhere.
std::string RenderProfileSummary(const std::vector<ProfileSample>& samples);

#if LSCHED_OBS_ENABLED

class SamplingProfiler {
 public:
  static SamplingProfiler& Global();

  /// Registers a live worker pool; `accounts` must outlive the
  /// registration. Returns a handle for UnregisterWorkers.
  int RegisterWorkers(const std::string& engine,
                      std::vector<const WorkerAccount*> accounts);
  void UnregisterWorkers(int handle);

  /// Starts the background sampler at `hz` into a ring of `capacity`
  /// samples (oldest dropped, drops counted). No-op if already running.
  bool Start(double hz, size_t capacity = 1 << 16);
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Oldest-first copy of the ring.
  std::vector<ProfileSample> Snapshot() const;
  bool WriteCsv(const std::string& path) const;
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  SamplingProfiler() = default;
  void SampleOnce();

  struct Registration {
    int handle = 0;
    std::string engine;
    std::vector<const WorkerAccount*> accounts;
  };
  mutable std::mutex mu_;
  std::vector<Registration> registrations_;
  int next_handle_ = 1;
  std::vector<ProfileSample> ring_;
  size_t ring_head_ = 0;   // next write slot
  size_t ring_size_ = 0;
  std::atomic<int64_t> dropped_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread sampler_;
  double period_us_ = 0.0;
};

#else  // !LSCHED_OBS_ENABLED

class SamplingProfiler {
 public:
  static SamplingProfiler& Global() {
    static SamplingProfiler p;
    return p;
  }
  int RegisterWorkers(const std::string&,
                      std::vector<const WorkerAccount*>) {
    return 0;
  }
  void UnregisterWorkers(int) {}
  bool Start(double, size_t = 0) { return false; }
  void Stop() {}
  bool running() const { return false; }
  std::vector<ProfileSample> Snapshot() const { return {}; }
  bool WriteCsv(const std::string&) const { return false; }
  int64_t dropped() const { return 0; }
};

#endif  // LSCHED_OBS_ENABLED

}  // namespace prof
}  // namespace lsched

#endif  // LSCHED_OBS_PROFILER_H_

#include "obs/query_trace.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace lsched {
namespace obs {
namespace {

// Local name tables: src/obs must not link lsched_exec, so the enum names
// are mirrored here (kept in sync with exec/exec_types.h by
// QueryTraceTest.StatusAndPriorityNamesMatchExec).
const char* const kStatusNames[] = {"ADMITTED", "RUNNING",  "DONE",
                                    "CANCELLED", "FAILED", "SHED"};
const char* const kPriorityNames[] = {"LOW", "NORMAL", "HIGH"};

const char* StatusName(int32_t s) {
  if (s < 0 || s >= static_cast<int32_t>(sizeof(kStatusNames) /
                                         sizeof(kStatusNames[0]))) {
    return "?";
  }
  return kStatusNames[s];
}

const char* PriorityName(int32_t p) {
  if (p < 0 || p >= static_cast<int32_t>(sizeof(kPriorityNames) /
                                         sizeof(kPriorityNames[0]))) {
    return "?";
  }
  return kPriorityNames[p];
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

const char* TraceEdgeKindName(TraceEdgeKind k) {
  switch (k) {
    case TraceEdgeKind::kArrival: return "arrival";
    case TraceEdgeKind::kAdmit: return "admit";
    case TraceEdgeKind::kShed: return "shed";
    case TraceEdgeKind::kDisplace: return "displace";
    case TraceEdgeKind::kDisplacedBy: return "displaced_by";
    case TraceEdgeKind::kConsideredSkipped: return "considered_skipped";
    case TraceEdgeKind::kFallback: return "fallback";
    case TraceEdgeKind::kScheduled: return "scheduled";
    case TraceEdgeKind::kRedirected: return "redirected";
    case TraceEdgeKind::kInjected: return "injected";
    case TraceEdgeKind::kDispatch: return "dispatch";
    case TraceEdgeKind::kComplete: return "complete";
    case TraceEdgeKind::kFailed: return "failed";
    case TraceEdgeKind::kRetry: return "retry";
    case TraceEdgeKind::kTerminal: return "terminal";
  }
  return "?";
}

LatencyBreakdown DeriveBreakdown(const QueryTraceRecord& record) {
  // Mirrors EpisodeRecorder's online tracker exactly: advance the current
  // mode's bucket to the edge time, then apply the state change. Buckets
  // telescope from arrival to terminal, so the exact-sum invariant holds by
  // construction.
  LatencyBreakdown b;
  const int64_t arrival_ns = LatencyNs(record.arrival_time);
  int64_t last_ns = arrival_ns;
  int inflight = 0;
  int retries_pending = 0;
  bool launched = false;
  auto advance = [&](double t) {
    const int64_t now_ns = LatencyNs(t);
    const int64_t delta = now_ns - last_ns;
    if (inflight > 0) {
      b.service_ns += delta;
    } else if (retries_pending > 0) {
      b.stall_ns += delta;
    } else if (launched) {
      b.queue_ns += delta;
    } else {
      b.admission_ns += delta;
    }
    last_ns = now_ns;
  };
  for (const TraceEdge& e : record.edges) {
    switch (e.kind) {
      case TraceEdgeKind::kScheduled:
        advance(e.time);
        launched = true;
        break;
      case TraceEdgeKind::kDispatch:
        advance(e.time);
        ++inflight;
        ++b.dispatches;
        if (e.value != 0.0 && retries_pending > 0) --retries_pending;
        break;
      case TraceEdgeKind::kComplete:
      case TraceEdgeKind::kFailed:
        advance(e.time);
        if (inflight > 0) --inflight;
        break;
      case TraceEdgeKind::kRetry:
        advance(e.time);
        ++retries_pending;
        ++b.retries;
        break;
      case TraceEdgeKind::kTerminal:
        advance(e.time);
        b.total_ns = LatencyNs(e.time) - arrival_ns;
        b.valid = true;
        break;
      default:
        break;  // causal-context edges carry no decomposition state
    }
  }
  return b;
}

std::string RenderExplain(const QueryTraceRecord& r) {
  std::string out;
  AppendF(&out, "query %" PRId64 " — %s (tenant %d, %s priority, %s engine)\n",
          r.query, StatusName(r.final_status), r.tenant,
          PriorityName(r.priority), r.engine.c_str());
  AppendF(&out,
          "  end-to-end latency: %.3f ms (arrival t=%.6fs, terminal "
          "t=%.6fs)\n",
          r.breakdown.total_seconds() * 1e3, r.arrival_time, r.terminal_time);
  AppendF(&out,
          "  decomposition: admission %.3f ms | queue %.3f ms | service "
          "%.3f ms | stall %.3f ms%s\n",
          r.breakdown.admission_seconds() * 1e3,
          r.breakdown.queue_seconds() * 1e3,
          r.breakdown.service_seconds() * 1e3,
          r.breakdown.stall_seconds() * 1e3,
          r.breakdown.SumNs() == r.breakdown.total_ns
              ? "  [segments sum exactly to total]"
              : "  [WARNING: segments do not sum to total]");
  if (r.dropped_edges > 0) {
    AppendF(&out, "  (%" PRId64 " edges dropped past the per-query cap)\n",
            r.dropped_edges);
  }
  out += "  timeline:\n";
  // Counters for the per-segment attribution, split at the first launch.
  bool launched = false;
  int skipped_before = 0, skipped_after = 0;
  int fallback_before = 0, fallback_after = 0;
  int redirects = 0, injections = 0, retries = 0, dispatches = 0;
  bool shed_at_door = false;
  int64_t displaced_by = -1;
  for (const TraceEdge& e : r.edges) {
    const double rel_ms = (e.time - r.arrival_time) * 1e3;
    AppendF(&out, "    +%9.3f ms  ", rel_ms);
    switch (e.kind) {
      case TraceEdgeKind::kArrival:
        AppendF(&out, "arrival (tenant %" PRId64 ", %s priority)", e.a,
                PriorityName(static_cast<int32_t>(e.b)));
        break;
      case TraceEdgeKind::kAdmit:
        out += "admission verdict: admit";
        break;
      case TraceEdgeKind::kShed:
        out += "admission verdict: shed (refused at the door)";
        shed_at_door = true;
        break;
      case TraceEdgeKind::kDisplace:
        AppendF(&out, "admitted, displacing query %" PRId64, e.a);
        break;
      case TraceEdgeKind::kDisplacedBy:
        AppendF(&out, "displaced by higher-priority query %" PRId64, e.a);
        displaced_by = e.a;
        break;
      case TraceEdgeKind::kConsideredSkipped:
        AppendF(&out,
                "considered by decision #%" PRId64
                " but skipped (chose query %" PRId64
                ", predicted score %.4f)",
                e.a, e.b, e.value);
        (launched ? skipped_after : skipped_before) += 1;
        break;
      case TraceEdgeKind::kFallback:
        AppendF(&out,
                "considered by guard-fallback decision #%" PRId64
                " but skipped (chose query %" PRId64 ")",
                e.a, e.b);
        (launched ? fallback_after : fallback_before) += 1;
        break;
      case TraceEdgeKind::kScheduled:
        AppendF(&out,
                "pipeline launched by decision #%" PRId64
                " (root op %" PRId64 ", degree %d)",
                e.a, e.b, static_cast<int>(e.value));
        launched = true;
        break;
      case TraceEdgeKind::kRedirected:
        AppendF(&out,
                "launch redirected to query %" PRId64
                " by weighted-fairness post-processing",
                e.a);
        ++redirects;
        break;
      case TraceEdgeKind::kInjected:
        AppendF(&out, "launch injected (%s)",
                e.value == 1.0 ? "starved priority class"
                               : "under fair share");
        ++injections;
        break;
      case TraceEdgeKind::kDispatch:
        out += e.value != 0.0 ? "work-order retry dispatched"
                              : "work order dispatched";
        ++dispatches;
        break;
      case TraceEdgeKind::kComplete:
        AppendF(&out, "work order completed (%.3f ms)", e.value * 1e3);
        break;
      case TraceEdgeKind::kFailed:
        out += "work-order attempt failed";
        break;
      case TraceEdgeKind::kRetry:
        out += "failed attempt queued for retry";
        ++retries;
        break;
      case TraceEdgeKind::kTerminal:
        AppendF(&out, "terminal: %s",
                StatusName(static_cast<int32_t>(e.a)));
        break;
    }
    out += "\n";
  }
  out += "  attribution:\n";
  AppendF(&out, "    admission wait (%.3f ms): ",
          r.breakdown.admission_seconds() * 1e3);
  if (shed_at_door) {
    out += "refused by admission control (shed at the door)";
  } else if (displaced_by >= 0) {
    AppendF(&out, "displaced by query %" PRId64 " before any launch",
            displaced_by);
  } else {
    out += "waiting in the admitted set for the first pipeline launch";
    if (skipped_before + fallback_before > 0) {
      AppendF(&out, "; passed over by %d decision(s)",
              skipped_before + fallback_before);
      if (fallback_before > 0) {
        AppendF(&out, " (%d from guard fallback)", fallback_before);
      }
    }
  }
  out += "\n";
  AppendF(&out, "    queue wait (%.3f ms): ",
          r.breakdown.queue_seconds() * 1e3);
  if (redirects > 0) {
    AppendF(&out,
            "launch redirected away %d time(s) by weighted fairness",
            redirects);
    if (skipped_after + fallback_after > 0) {
      AppendF(&out, "; passed over by %d more decision(s)",
              skipped_after + fallback_after);
    }
  } else if (skipped_after + fallback_after > 0) {
    AppendF(&out, "passed over by %d decision(s)",
            skipped_after + fallback_after);
    if (fallback_after > 0) {
      AppendF(&out, " (%d from guard fallback)", fallback_after);
    }
  } else {
    out += "waiting for a free thread";
  }
  if (injections > 0) {
    AppendF(&out, "; %d injected launch(es) cut the wait", injections);
  }
  out += "\n";
  AppendF(&out, "    service (%.3f ms): %d work-order dispatch(es)\n",
          r.breakdown.service_seconds() * 1e3, dispatches);
  AppendF(&out, "    stall (%.3f ms): %d failed attempt(s) retried\n",
          r.breakdown.stall_seconds() * 1e3, retries);
  return out;
}

std::string QueryTraceCsvHeader() {
  return "query,tenant,priority,engine,status,arrival,terminal,"
         "admission_ns,queue_ns,service_ns,stall_ns,total_ns,dispatches,"
         "retries,dropped_edges,edge,time,kind,a,b,value";
}

void WriteQueryTraceCsv(const std::vector<QueryTraceRecord>& records,
                        std::ostream& os) {
  os << QueryTraceCsvHeader() << "\n";
  char buf[512];
  for (const QueryTraceRecord& r : records) {
    for (size_t i = 0; i < r.edges.size(); ++i) {
      const TraceEdge& e = r.edges[i];
      snprintf(buf, sizeof(buf),
               "%" PRId64 ",%d,%d,%s,%d,%.17g,%.17g,%" PRId64 ",%" PRId64
               ",%" PRId64 ",%" PRId64 ",%" PRId64 ",%d,%d,%" PRId64
               ",%zu,%.17g,%d,%" PRId64 ",%" PRId64 ",%.17g",
               r.query, r.tenant, r.priority, r.engine.c_str(),
               r.final_status, r.arrival_time, r.terminal_time,
               r.breakdown.admission_ns, r.breakdown.queue_ns,
               r.breakdown.service_ns, r.breakdown.stall_ns,
               r.breakdown.total_ns, r.breakdown.dispatches,
               r.breakdown.retries, r.dropped_edges, i, e.time,
               static_cast<int>(e.kind), e.a, e.b, e.value);
      os << buf << "\n";
    }
  }
}

bool ParseQueryTraceCsv(std::istream& is,
                        std::vector<QueryTraceRecord>* out) {
  out->clear();
  std::string line;
  if (!std::getline(is, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line != QueryTraceCsvHeader()) return false;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> f = SplitCsv(line);
    if (f.size() != 21) return false;
    const size_t edge_index = static_cast<size_t>(strtoull(
        f[15].c_str(), nullptr, 10));
    if (edge_index == 0) {
      QueryTraceRecord r;
      r.query = strtoll(f[0].c_str(), nullptr, 10);
      r.tenant = static_cast<int32_t>(strtol(f[1].c_str(), nullptr, 10));
      r.priority = static_cast<int32_t>(strtol(f[2].c_str(), nullptr, 10));
      r.engine = f[3];
      r.final_status =
          static_cast<int32_t>(strtol(f[4].c_str(), nullptr, 10));
      r.arrival_time = strtod(f[5].c_str(), nullptr);
      r.terminal_time = strtod(f[6].c_str(), nullptr);
      r.breakdown.admission_ns = strtoll(f[7].c_str(), nullptr, 10);
      r.breakdown.queue_ns = strtoll(f[8].c_str(), nullptr, 10);
      r.breakdown.service_ns = strtoll(f[9].c_str(), nullptr, 10);
      r.breakdown.stall_ns = strtoll(f[10].c_str(), nullptr, 10);
      r.breakdown.total_ns = strtoll(f[11].c_str(), nullptr, 10);
      r.breakdown.dispatches =
          static_cast<int32_t>(strtol(f[12].c_str(), nullptr, 10));
      r.breakdown.retries =
          static_cast<int32_t>(strtol(f[13].c_str(), nullptr, 10));
      r.breakdown.valid = true;
      r.dropped_edges = strtoll(f[14].c_str(), nullptr, 10);
      out->push_back(std::move(r));
    } else if (out->empty() || edge_index != out->back().edges.size()) {
      return false;  // out-of-order edge row
    }
    if (out->empty()) return false;
    TraceEdge e;
    e.time = strtod(f[16].c_str(), nullptr);
    e.kind = static_cast<TraceEdgeKind>(strtol(f[17].c_str(), nullptr, 10));
    e.a = strtoll(f[18].c_str(), nullptr, 10);
    e.b = strtoll(f[19].c_str(), nullptr, 10);
    e.value = strtod(f[20].c_str(), nullptr);
    out->back().edges.push_back(e);
  }
  return true;
}

#if LSCHED_OBS_ENABLED

QueryTraceLog::QueryTraceLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void QueryTraceLog::SetCapture(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = on;
}

bool QueryTraceLog::capture_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capture_;
}

void QueryTraceLog::Record(QueryTraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
  }
}

std::vector<QueryTraceRecord> QueryTraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTraceRecord> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  } else {
    out = ring_;
  }
  return out;
}

bool QueryTraceLog::Find(int64_t query, QueryTraceRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Scan newest-first so re-used ids resolve to the latest trace.
  for (size_t k = ring_.size(); k > 0; --k) {
    const size_t i =
        wrapped_ ? (next_ + k - 1) % ring_.size() : k - 1;
    if (ring_[i].query == query) {
      *out = ring_[i];
      return true;
    }
  }
  return false;
}

size_t QueryTraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void QueryTraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

bool QueryTraceLog::WriteCsv(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  WriteQueryTraceCsv(Snapshot(), os);
  return true;
}

QueryTraceLog& QueryTraceLog::Global() {
  static QueryTraceLog* log = new QueryTraceLog();
  return *log;
}

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#ifndef LSCHED_OBS_OBS_H_
#define LSCHED_OBS_OBS_H_

// Umbrella for the observability layer (DESIGN.md §8): compile-time gate,
// runtime on/off switch, thread identity for trace attribution, and the
// env-driven exporters.
//
// Compile-time: the CMake option LSCHED_OBS (default ON) defines
// LSCHED_OBS_ENABLED on every target. With -DLSCHED_OBS=OFF all metric,
// trace, and decision-log calls compile to empty inline stubs.
//
// Runtime: recording defaults to on and can be suppressed with the
// LSCHED_OBS environment variable (0/off/false) or SetEnabled(false).
// Exporters: if LSCHED_TRACE_EXPORT=<path> is set, a Chrome trace_event
// JSON is written at process exit (open it in chrome://tracing); if
// LSCHED_DECISION_LOG=<path> is set, the scheduler decision log is dumped
// as CSV at process exit.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

#ifndef LSCHED_OBS_ENABLED
#define LSCHED_OBS_ENABLED 1
#endif

namespace lsched {
namespace obs {

/// True iff the layer is compiled in (LSCHED_OBS=ON at configure time).
inline constexpr bool kCompiledIn = LSCHED_OBS_ENABLED != 0;

#if LSCHED_OBS_ENABLED

namespace internal {
/// Runtime switch backing Enabled(). Constant-initialized (no static-init
/// order hazard); obs.cc's TU initializer applies the LSCHED_OBS env var
/// before main().
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Whether recording is active right now (compile gate && runtime switch).
/// Inline single relaxed load: cheap enough for every metric write.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

/// Small dense id for the calling thread, used as the Chrome-trace `tid`.
/// Auto-assigned on first use; engines may pin a meaningful id (e.g. the
/// worker index) with SetThreadId before recording.
uint32_t ThreadId();
void SetThreadId(uint32_t tid);

/// Microseconds since process start (steady clock) — the wall-clock
/// timebase for trace events recorded by RAII spans.
double NowMicros();

/// Annotation channel between scheduler policies and the engine's decision
/// log: a policy calls AnnotatePredictedScore(score) inside Schedule();
/// the engine consumes it (thread-local, cleared on read) when it logs the
/// decision. Returns NaN if no annotation is pending.
void AnnotatePredictedScore(double score);
double TakePredictedScore();

/// Annotation channel between serving-layer decision post-processing and
/// the query-trace recorder: ServingPolicy::FilterDecision announces each
/// fairness redirection / injection it applies; EpisodeRecorder — which
/// runs immediately afterwards on the same (coordinator) thread — drains
/// the pending actions into lifetime-trace edges. Thread-local, bounded,
/// cleared on TakeServingActions().
struct ServingAction {
  enum Kind : int32_t {
    kRedirect = 0,         ///< `query`'s launch rewritten to `other`
    kInjectPriority = 1,   ///< launch injected for starved class `query`
    kInjectShare = 2,      ///< launch injected for under-share `query`
  };
  int32_t kind = kRedirect;
  int64_t query = -1;
  int64_t other = -1;
};

void AnnotateServingAction(int32_t kind, int64_t query, int64_t other);
/// Drains pending actions (oldest first, at most `max`) into `out`;
/// returns the number written. The channel is emptied either way.
size_t TakeServingActions(ServingAction* out, size_t max);

#else  // !LSCHED_OBS_ENABLED

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}
inline uint32_t ThreadId() { return 0; }
inline void SetThreadId(uint32_t) {}
inline double NowMicros() { return 0.0; }
inline void AnnotatePredictedScore(double) {}
inline double TakePredictedScore() {
  return std::numeric_limits<double>::quiet_NaN();
}

struct ServingAction {
  enum Kind : int32_t {
    kRedirect = 0,
    kInjectPriority = 1,
    kInjectShare = 2,
  };
  int32_t kind = kRedirect;
  int64_t query = -1;
  int64_t other = -1;
};

inline void AnnotateServingAction(int32_t, int64_t, int64_t) {}
inline size_t TakeServingActions(ServingAction*, size_t) { return 0; }

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_OBS_H_

#include "obs/obs.h"

#if LSCHED_OBS_ENABLED

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/decision_log.h"
#include "obs/drift.h"
#include "obs/exporter.h"
#include "obs/query_trace.h"
#include "obs/scalar_events.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lsched {
namespace obs {

namespace {

bool EnvDisables(const char* value) {
  if (value == nullptr) return false;
  return std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
         std::strcmp(value, "OFF") == 0 || std::strcmp(value, "false") == 0 ||
         std::strcmp(value, "FALSE") == 0;
}

void ExitDump() {
  if (const char* path = std::getenv("LSCHED_TRACE_EXPORT")) {
    if (Tracer::Global().WriteChromeTrace(path)) {
      LSCHED_LOG(Info) << "wrote Chrome trace to " << path << " ("
                       << Tracer::Global().buffered_events() << " events)";
    } else {
      LSCHED_LOG(Error) << "failed to write Chrome trace to " << path;
    }
  }
  if (const char* path = std::getenv("LSCHED_DECISION_LOG")) {
    if (DecisionLog::Global().WriteCsv(std::string(path))) {
      LSCHED_LOG(Info) << "wrote decision log to " << path << " ("
                       << DecisionLog::Global().size() << " rows)";
    } else {
      LSCHED_LOG(Error) << "failed to write decision log to " << path;
    }
  }
  if (const char* path = std::getenv("LSCHED_SCALAR_EVENTS")) {
    if (ScalarEventWriter::Global().WriteJsonl(std::string(path))) {
      LSCHED_LOG(Info) << "wrote scalar event log to " << path << " ("
                       << ScalarEventWriter::Global().size() << " events)";
    } else {
      LSCHED_LOG(Error) << "failed to write scalar event log to " << path;
    }
  }
  if (const char* path = std::getenv("LSCHED_QUERY_TRACE")) {
    if (QueryTraceLog::Global().WriteCsv(std::string(path))) {
      LSCHED_LOG(Info) << "wrote query trace log to " << path << " ("
                       << QueryTraceLog::Global().size() << " queries)";
    } else {
      LSCHED_LOG(Error) << "failed to write query trace log to " << path;
    }
  }
}

void StopExporterAtExit() { GlobalExporter().Stop(); }

struct Runtime {
  std::chrono::steady_clock::time_point epoch;

  Runtime() : epoch(std::chrono::steady_clock::now()) {
    if (EnvDisables(std::getenv("LSCHED_OBS"))) {
      internal::g_enabled.store(false, std::memory_order_relaxed);
    }
    if (std::getenv("LSCHED_TRACE_EXPORT") != nullptr ||
        std::getenv("LSCHED_DECISION_LOG") != nullptr ||
        std::getenv("LSCHED_SCALAR_EVENTS") != nullptr ||
        std::getenv("LSCHED_QUERY_TRACE") != nullptr) {
      std::atexit(ExitDump);
    }
    if (StartExporterFromEnv()) {
      std::atexit(StopExporterAtExit);
    }
    StartDriftMonitorFromEnv();
  }
};

Runtime& GlobalRuntime() {
  static Runtime rt;
  return rt;
}

/// Forces env parsing / atexit registration during this TU's dynamic
/// initialization, before any engine code can call Enabled().
[[maybe_unused]] const bool g_runtime_initialized = (GlobalRuntime(), true);

std::atomic<uint32_t> g_next_thread_id{0};

thread_local uint32_t tls_thread_id = UINT32_MAX;

thread_local double tls_predicted_score =
    std::numeric_limits<double>::quiet_NaN();

/// Bounded thread-local buffer for the serving-action channel. One
/// FilterDecision call produces at most a handful of actions; 64 bounds
/// pathological policies without heap traffic.
constexpr size_t kMaxPendingServingActions = 64;
thread_local ServingAction tls_serving_actions[kMaxPendingServingActions];
thread_local size_t tls_num_serving_actions = 0;

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

void SetEnabled(bool enabled) {
  GlobalRuntime();  // make sure the exporters are registered
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t ThreadId() {
  if (tls_thread_id == UINT32_MAX) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

void SetThreadId(uint32_t tid) { tls_thread_id = tid; }

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - GlobalRuntime().epoch)
      .count();
}

void AnnotatePredictedScore(double score) { tls_predicted_score = score; }

double TakePredictedScore() {
  const double score = tls_predicted_score;
  tls_predicted_score = std::numeric_limits<double>::quiet_NaN();
  return score;
}

void AnnotateServingAction(int32_t kind, int64_t query, int64_t other) {
  if (!Enabled()) return;
  if (tls_num_serving_actions >= kMaxPendingServingActions) return;
  ServingAction& a = tls_serving_actions[tls_num_serving_actions++];
  a.kind = kind;
  a.query = query;
  a.other = other;
}

size_t TakeServingActions(ServingAction* out, size_t max) {
  const size_t n =
      tls_num_serving_actions < max ? tls_num_serving_actions : max;
  for (size_t i = 0; i < n; ++i) out[i] = tls_serving_actions[i];
  tls_num_serving_actions = 0;
  return n;
}

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_ENABLED

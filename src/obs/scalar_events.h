#ifndef LSCHED_OBS_SCALAR_EVENTS_H_
#define LSCHED_OBS_SCALAR_EVENTS_H_

// Training telemetry stream: an append-only log of (step, wall time, tag,
// value) scalar events — the model-quality counterpart of the metrics
// registry. Where the registry holds *current* aggregates, the scalar
// event log keeps the full per-step series (episode reward, policy
// entropy, gradient norms, ...) so learning curves can be rendered offline
// (`lsched_cli report`, bench/fig14_training) without each producer
// maintaining ad-hoc vectors.
//
// Producers call ScalarEventWriter::Global().Append(tag, step, value);
// the JSONL dump (one object per line) is written on demand or at process
// exit when LSCHED_SCALAR_EVENTS=<path> is set (see obs.cc).
//
// Tags follow the registry naming convention (dotted lowercase, subsystem
// prefix): `train.reward`, `train.policy_entropy`, `online.update`, ...
// Tags must not contain '"' or '\' — they are written unescaped.

#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace lsched {
namespace obs {

struct ScalarEvent {
  int64_t step = 0;     ///< producer-defined step (episode / update index)
  double wall_ms = 0.0; ///< milliseconds since process start (NowMicros/1e3)
  std::string tag;      ///< dotted lowercase series name
  double value = 0.0;   ///< non-finite values round-trip as JSON null
};

#if LSCHED_OBS_ENABLED

/// Process-global append-only scalar event log. Thread-safe; Append is a
/// mutex push (these are per-episode/per-update events, not per-work-order
/// hot-path writes).
class ScalarEventWriter {
 public:
  static ScalarEventWriter& Global();

  void Append(const std::string& tag, int64_t step, double value);

  size_t size() const;
  std::vector<ScalarEvent> Snapshot() const;
  /// Events with tag == `tag`, in append order.
  std::vector<ScalarEvent> Series(const std::string& tag) const;
  /// Values of Series(tag), in append order.
  std::vector<double> SeriesValues(const std::string& tag) const;
  void Clear();

  void WriteJsonl(std::ostream& out) const;
  bool WriteJsonl(const std::string& path) const;

 private:
  ScalarEventWriter() = default;
  mutable std::mutex mu_;
  std::vector<ScalarEvent> events_;
};

/// Parses a JSONL stream produced by WriteJsonl back into events. Returns
/// false on malformed input. Blank lines are skipped.
bool ParseScalarEventsJsonl(std::istream& in, std::vector<ScalarEvent>* out);

#else  // !LSCHED_OBS_ENABLED

class ScalarEventWriter {
 public:
  static ScalarEventWriter& Global() {
    static ScalarEventWriter w;
    return w;
  }
  void Append(const std::string&, int64_t, double) {}
  size_t size() const { return 0; }
  std::vector<ScalarEvent> Snapshot() const { return {}; }
  std::vector<ScalarEvent> Series(const std::string&) const { return {}; }
  std::vector<double> SeriesValues(const std::string&) const { return {}; }
  void Clear() {}
  void WriteJsonl(std::ostream&) const {}
  bool WriteJsonl(const std::string&) const { return false; }
};

inline bool ParseScalarEventsJsonl(std::istream&, std::vector<ScalarEvent>*) {
  return false;
}

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_SCALAR_EVENTS_H_

#ifndef LSCHED_OBS_EXPORTER_H_
#define LSCHED_OBS_EXPORTER_H_

// Live metrics exposure: a minimal background HTTP server (plain POSIX
// sockets, one accept thread) serving the metrics registry in Prometheus
// text exposition format so a long-running engine process is scrape-able.
//
//   GET /metrics  -> text/plain; version=0.0.4 rendering of every
//                    registered counter, gauge, and histogram, prefixed
//                    with a `lsched_build_info{...} 1` provenance gauge
//   GET /tables   -> aligned-text per-subsystem counter tables
//                    (prof::CounterTables), human-oriented
//   GET /healthz  -> 200 "ok", or 503 "draining" while the serving daemon
//                    is in its graceful-drain window (SetDraining)
//   anything else -> 404
//
// Each accepted connection is handled on its own thread so overlapping
// scrapes never serialize behind a slow client, and Stop() joins all
// in-flight handlers before closing the listen socket — a scrape racing
// a shutdown always receives its complete response.
//
// Gated behind the LSCHED_METRICS_PORT environment variable: when set,
// obs.cc starts the process-global exporter on 127.0.0.1:<port> before
// main() and stops it at exit. Tests use Start(0) for an ephemeral port.
//
// Metric names are sanitized for Prometheus (dots and other invalid
// characters become underscores: `model.drift_score` is exposed as
// `model_drift_score`, with the original name in the HELP line).

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"

#if LSCHED_OBS_ENABLED
#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#endif

namespace lsched {
namespace obs {

/// `name` with every character outside [a-zA-Z0-9_:] replaced by '_'
/// (Prometheus metric-name charset).
std::string PrometheusName(const std::string& name);

/// Process-wide health state surfaced by /healthz: while draining, the
/// endpoint answers 503 "draining" so load balancers stop routing new work
/// here during a graceful shutdown (DESIGN.md §11). The serving daemon
/// flips this around its drain sequence.
void SetDraining(bool draining);
bool Draining();

/// The three-line `lsched_build_info` block (HELP/TYPE/sample) stamped at
/// the top of every /metrics response: a constant-1 gauge whose labels
/// carry the git sha, compiler, build type, and obs/faults compile gates
/// from util/build_info.h. The standard Prometheus idiom for joining
/// provenance onto every other series.
std::string BuildInfoPrometheusText();

/// Renders a registry snapshot in Prometheus text exposition format
/// (version 0.0.4), build-info block first. Deterministic given the
/// snapshot — the golden-test surface.
void RenderPrometheusText(const MetricsRegistry::Snapshot& snapshot,
                          std::ostream& out);

#if LSCHED_OBS_ENABLED

class MetricsExporter {
 public:
  MetricsExporter() = default;
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// starts the serving thread. Returns false if the bind fails or the
  /// exporter is already running.
  bool Start(int port);
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

 private:
  // One handler thread per accepted connection, tracked so Stop() can
  // join every in-flight scrape before tearing the listener down. The
  // accept loop reaps finished entries so a long-lived daemon stays
  // bounded regardless of scrape count.
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void Serve();
  void HandleConnection(int fd);
  /// Joins and erases connections whose handler has finished. Caller
  /// must hold conn_mu_.
  void ReapFinishedLocked();

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
  std::mutex conn_mu_;
  std::list<std::unique_ptr<Connection>> connections_;
};

/// The process-global exporter used by the LSCHED_METRICS_PORT env gate.
MetricsExporter& GlobalExporter();
/// Starts GlobalExporter() if LSCHED_METRICS_PORT is set; returns whether
/// it is running afterwards. Called from obs.cc's TU initializer.
bool StartExporterFromEnv();

#else  // !LSCHED_OBS_ENABLED

class MetricsExporter {
 public:
  bool Start(int) { return false; }
  void Stop() {}
  bool running() const { return false; }
  int port() const { return -1; }
};

inline MetricsExporter& GlobalExporter() {
  static MetricsExporter e;
  return e;
}
inline bool StartExporterFromEnv() { return false; }

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_EXPORTER_H_

#ifndef LSCHED_OBS_METRICS_H_
#define LSCHED_OBS_METRICS_H_

// Metrics registry: named counters, gauges, and log-bucketed histograms.
//
// Hot-path writes (Counter::Add, Gauge::Add, Histogram::Observe) touch only
// a per-thread shard (cache-line-aligned atomics, relaxed ordering) — no
// locks, no false sharing. Reads (Value()/TakeSnapshot()) aggregate across
// shards and may be slightly stale with respect to concurrent writers,
// which is fine for telemetry.
//
// Naming convention (DESIGN.md §8): dotted lowercase, prefixed by subsystem
// — `engine.*` (work-order execution), `sched.*` (scheduling decisions),
// `train.*` (RL trainer loop).
//
// When the library is compiled out (-DLSCHED_OBS=OFF, i.e.
// LSCHED_OBS_ENABLED == 0) every type below degrades to an inline no-op
// stub so instrumentation sites need no #ifdefs.

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace lsched {
namespace obs {

/// Aggregated view of one histogram, safe to copy around and merge.
struct HistogramSnapshot {
  /// count[i] counts observations in [LowerBound(i), UpperBound(i)).
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// Geometric bucket boundaries shared by every histogram: bucket 0 is
  /// [0, kMinValue); bucket i >= 1 is [kMin * 2^(i-1), kMin * 2^i); the
  /// last bucket absorbs any overflow.
  static double LowerBound(size_t bucket);
  static double UpperBound(size_t bucket);

  void Merge(const HistogramSnapshot& other);
  /// Percentile estimate (p in [0,100]) via linear interpolation inside
  /// the owning bucket. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : sum / double(count); }
};

#if LSCHED_OBS_ENABLED

namespace internal {
inline constexpr size_t kShards = 16;
inline constexpr size_t kHistogramBuckets = 64;
inline constexpr double kHistogramMinValue = 1e-9;

struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

/// Round-robin shard assignment for a new thread (defined in metrics.cc).
size_t AssignShardIndex();

/// Index of the calling thread's shard (stable per thread, round-robin).
/// Inline: one TLS load on the metric hot path.
inline size_t ShardIndex() {
  thread_local size_t idx = AssignShardIndex();
  return idx;
}

inline void AtomicAddDouble(std::atomic<double>* a, double delta) {
  double cur = a->load(std::memory_order_relaxed);
  while (
      !a->compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

/// Exact 2^k for -1022 <= k <= 1023, bit-assembled — no libm call.
inline double Exp2i(int k) {
  return std::bit_cast<double>(static_cast<uint64_t>(1023 + k) << 52);
}

/// Lower bound of bucket b >= 1 (== HistogramSnapshot::LowerBound, but
/// inline and exact: a power-of-two multiply never rounds).
inline double BucketLower(size_t bucket) {
  return kHistogramMinValue * Exp2i(static_cast<int>(bucket) - 1);
}
}  // namespace internal

/// Monotonically increasing counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t delta = 1) {
    if (!Enabled()) return;
    shards_[internal::ShardIndex()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  const std::string& name() const { return name_; }
  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  internal::CounterShard shards_[internal::kShards];
};

/// Up-down gauge. Add/Sub are sharded (hot-path safe); Set is a
/// low-frequency convenience that collapses the value into shard 0.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Add(double delta) {
    if (!Enabled()) return;
    internal::AtomicAddDouble(&shards_[internal::ShardIndex()].value, delta);
  }
  void Sub(double delta) { Add(-delta); }
  void Set(double value) {
    if (!Enabled()) return;
    shards_[0].value.store(value, std::memory_order_relaxed);
    for (size_t i = 1; i < internal::kShards; ++i) {
      shards_[i].value.store(0.0, std::memory_order_relaxed);
    }
  }
  double Value() const {
    double total = 0.0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }
  const std::string& name() const { return name_; }
  void Reset() {
    for (auto& s : shards_) s.value.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<double> value{0.0};
  };
  std::string name_;
  Shard shards_[internal::kShards];
};

/// Log-bucketed (base-2 geometric) histogram; see HistogramSnapshot for the
/// bucket layout. Designed for durations in seconds (1ns .. ~10^10s).
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void Observe(double value) {
    if (!Enabled()) return;
    Shard& s = shards_[internal::ShardIndex()];
    s.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    internal::AtomicAddDouble(&s.sum, value);
  }
  HistogramSnapshot TakeSnapshot() const;
  const std::string& name() const { return name_; }
  void Reset();

  /// Folds a locally-accumulated snapshot in (one atomic pass, not one per
  /// observation) — the batch path for single-threaded recorders.
  void MergeSnapshot(const HistogramSnapshot& snap);

  /// Bucket index for `value` (exposed for tests). Inline and libm-free:
  /// this runs on every Observe.
  static size_t BucketFor(double value) {
    if (!(value >= internal::kHistogramMinValue)) return 0;  // NaN/negatives
    // Multiply by the (inexact) reciprocal instead of dividing: the
    // exponent only needs to be within one of the true bucket, and the
    // boundary nudges below repair that.
    const double ratio = value * 1e9;
    // Exponent field == floor(log2) for positive normals.
    const int exp = static_cast<int>(
                        (std::bit_cast<uint64_t>(ratio) >> 52) & 0x7ffu) -
                    1023 + 1;
    if (exp < 1) return 1;
    if (exp >= static_cast<int>(internal::kHistogramBuckets)) {
      return internal::kHistogramBuckets - 1;
    }
    // The division can land on the wrong side of an exact power-of-two
    // boundary; nudge into the half-open [lower, upper) bucket.
    size_t b = static_cast<size_t>(exp);
    if (value < internal::BucketLower(b)) --b;
    if (b + 1 < internal::kHistogramBuckets &&
        value >= internal::BucketLower(b + 1)) {
      ++b;
    }
    return b;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[internal::kHistogramBuckets] = {};
    std::atomic<double> sum{0.0};
  };
  std::string name_;
  Shard shards_[internal::kShards];
};

/// Process-global registry. Get* creates on first use and returns a stable
/// pointer — call sites should cache it (e.g. in a function-local static).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Aggregated values of everything registered so far, sorted by name.
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Zeroes every metric (names stay registered). Intended for benches and
  /// tests between measured sections, not for concurrent hot paths.
  void ResetAll();

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  // node-stable maps: pointers handed out must survive rehash.
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

#else  // !LSCHED_OBS_ENABLED -------------------------------------------------

class Counter {
 public:
  void Add(int64_t = 1) {}
  int64_t Value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Add(double) {}
  void Sub(double) {}
  void Set(double) {}
  double Value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  HistogramSnapshot TakeSnapshot() const { return {}; }
  void Reset() {}
  void MergeSnapshot(const HistogramSnapshot&) {}
  static size_t BucketFor(double) { return 0; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
  Counter* GetCounter(const std::string&) { return &counter_; }
  Gauge* GetGauge(const std::string&) { return &gauge_; }
  Histogram* GetHistogram(const std::string&) { return &histogram_; }
  struct Snapshot {
    std::vector<std::pair<std::string, int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot TakeSnapshot() const { return {}; }
  void ResetAll() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_METRICS_H_

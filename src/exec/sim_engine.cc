#include "exec/sim_engine.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "testing/faultpoint.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

SimEngine::SimEngine(SimEngineConfig config)
    : config_(std::move(config)), cost_model_(config_.cost_params) {}

void SimEngine::ResetRunState() {
  rng_ = Rng(config_.seed);
  queries_.clear();
  threads_.assign(static_cast<size_t>(config_.num_threads), SimThread{});
  ctx_.Reset();
  accounts_.clear();
  for (size_t i = 0; i < threads_.size(); ++i) {
    threads_[i].id = static_cast<int>(i);
    ThreadInfo info;
    info.id = threads_[i].id;
    ctx_.AddThread(info);
    accounts_.emplace_back();
    accounts_.back().Start(0, prof::WorkerState::kIdle);
  }
  active_pipelines_.clear();
  while (!events_.empty()) events_.pop();
  event_seq_ = 0;
  current_decision_id_ = -1;
  terminal_queries_ = 0;
  pending_thread_removals_ = 0;
  // Scripted cancels are queued before arrivals (Run) so that at equal
  // times the lower sequence number wins the tie and a cancel at t <=
  // arrival deterministically cancels the query on admission.
  for (size_t i = 0; i < config_.cancels.size(); ++i) {
    events_.push(SimEvent{config_.cancels[i].time, event_seq_++,
                          SimEvent::kCancel, static_cast<int>(i)});
  }
  for (size_t i = 0; i < config_.thread_events.size(); ++i) {
    events_.push(SimEvent{config_.thread_events[i].time, event_seq_++,
                          SimEvent::kPoolChange, static_cast<int>(i)});
  }
}

bool SimEngine::AnyPendingFusedWork() const {
  for (const ActivePipeline& p : active_pipelines_) {
    if (p.dead) continue;
    if (p.next_wo < p.total_fused || !p.retry_ready.empty()) return true;
  }
  return false;
}

bool SimEngine::TerminateQuery(QueryId query, QueryStatus status, double now) {
  if (query < 0 || static_cast<size_t>(query) >= queries_.size()) return false;
  QueryState* q = queries_[static_cast<size_t>(query)].get();
  if (q == nullptr || IsTerminalStatus(q->status())) return false;
  LSCHED_CHECK(q->TransitionTo(status));
  // Kill the query's pipelines: pending fused work is dropped, in-flight
  // attempts are discarded when they come back, retries are abandoned.
  int64_t dropped = 0;
  for (ActivePipeline& p : active_pipelines_) {
    if (p.query != query || p.dead) continue;
    p.dead = true;
    p.retry_ready.clear();
    dropped += static_cast<int64_t>(p.total_fused - p.succeeded);
  }
  recorder_.OnQueryTerminated(q, now, dropped);
  if (ctx_.FindQuery(query) != nullptr) ctx_.RemoveQuery(query);
  ++terminal_queries_;
  if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*q, now);
  return true;
}

bool SimEngine::CancelQuery(QueryId query) {
  return TerminateQuery(query, QueryStatus::kCancelled, ctx_.now());
}

void SimEngine::ApplyDecision(const SchedulingDecision& decision, double now) {
  (void)now;
  for (const ParallelismChoice& pc : decision.parallelism) {
    if (QueryState* q = ctx_.FindQuery(pc.query)) {
      q->set_max_threads(std::max(0, pc.max_threads));
    }
  }
  for (const PipelineChoice& choice : decision.pipelines) {
    QueryState* q = ctx_.FindQuery(choice.query);
    if (q == nullptr) continue;
    if (choice.root_op < 0 ||
        choice.root_op >= static_cast<int>(q->plan().num_nodes())) {
      continue;
    }
    if (!q->IsOpSchedulable(choice.root_op)) continue;

    std::vector<int> valid = q->ValidPipelineFrom(choice.root_op);
    const int degree =
        std::clamp(choice.degree, 1, static_cast<int>(valid.size()));
    valid.resize(static_cast<size_t>(degree));

    ActivePipeline pipeline;
    pipeline.query = q->id();
    pipeline.chain = valid;
    pipeline.total_fused =
        std::max(q->plan().node(valid[0]).num_work_orders, 1);
    pipeline.est_seconds_per_fused =
        cost_model_.PipelineWorkOrderSeconds(q->plan(), valid);
    pipeline.memory = cost_model_.PipelineMemory(q->plan(), valid);
    pipeline.created_at = now;
    pipeline.decision_id = current_decision_id_;
    for (int op : valid) q->set_op_scheduled(op, true);
    // Scheduling flags entered the query's feature inputs: invalidate
    // cached encodings.
    ctx_.MarkQueryDirty(q->id());
    recorder_.OnPipelineLaunched(current_decision_id_, q->id(), valid[0],
                                 degree, pipeline.total_fused, now);
    active_pipelines_.push_back(std::move(pipeline));
  }
}

void SimEngine::DispatchTo(int thread_id, int pipeline_idx, double now) {
  ActivePipeline& p = active_pipelines_[static_cast<size_t>(pipeline_idx)];
  SimThread& t = threads_[static_cast<size_t>(thread_id)];

  QueryState* q = ctx_.FindQuery(p.query);
  LSCHED_CHECK(q != nullptr);

  // Pick the work order: retries first (FIFO), then the next fresh index.
  const bool is_retry = !p.retry_ready.empty();
  int wo_index;
  if (is_retry) {
    wo_index = p.retry_ready.front();
    p.retry_ready.erase(p.retry_ready.begin());
  } else {
    wo_index = p.next_wo++;
  }

  double duration = p.est_seconds_per_fused;
  const double noise =
      std::max(0.05, rng_.Normal(1.0, config_.cost_params.noise_cv));
  duration *= noise;
  const ThreadInfo* info = ctx_.thread(thread_id);
  LSCHED_CHECK(info != nullptr);
  if (info->last_query == p.query) {
    duration *= (1.0 - config_.cost_params.locality_gain);
  }
  // Intra-query contention: k threads (incl. this one) on the same query.
  duration *= 1.0 + config_.cost_params.intra_query_contention *
                        static_cast<double>(q->assigned_threads());
  duration = std::max(duration, 1e-9);

  // Fault injection at the canonical execution point. Probed AFTER the
  // noise draw so the RNG sequence — and therefore every duration — of a
  // run with faults compiled out (or disarmed) is bit-identical to a
  // no-fault run.
  bool attempt_failed = false;
  if (const FaultAction fault = LSCHED_FAULT("work_order_exec", p.query, now)) {
    if (fault.type == FaultType::kError) {
      attempt_failed = true;  // the attempt consumes its full duration
    } else {
      duration += std::max(0.0, fault.param);  // kDelay / kStall
    }
  }
  // Per-work-order deadline: the attempt is aborted at the deadline.
  if (config_.work_order_deadline_seconds > 0.0 &&
      duration > config_.work_order_deadline_seconds) {
    attempt_failed = true;
    duration = config_.work_order_deadline_seconds;
    recorder_.OnWorkOrderExpired();
  }

  const bool first_dispatch = p.dispatched == 0;
  ++p.dispatched;
  ++p.inflight;
  ctx_.SetThreadBusy(thread_id, p.query);
  t.pipeline_index = pipeline_idx;
  t.wo_index = wo_index;
  t.attempt_failed = attempt_failed;
  t.busy_since = now;
  t.busy_until = now + duration;
  q->set_assigned_threads(q->assigned_threads() + 1);
  const int inflight = ctx_.total_threads() - ctx_.num_free_threads();
  recorder_.OnWorkOrderDispatched(p.query, is_retry, inflight,
                                  now - p.created_at, now);

  if (obs::Enabled()) {
    // Virtual-time spans: the work order's full extent is known at
    // dispatch, so record it immediately against the simulated thread.
    recorder_.RecordVirtualSpan(
        EpisodeRecorder::SimSpanKind::kWorkOrder, now * 1e6,
        static_cast<float>(duration * 1e6), static_cast<uint32_t>(thread_id),
        static_cast<uint32_t>(p.query), pipeline_idx);
    if (first_dispatch && now > p.created_at) {
      recorder_.RecordVirtualSpan(
          EpisodeRecorder::SimSpanKind::kQueueWait, p.created_at * 1e6,
          static_cast<float>((now - p.created_at) * 1e6),
          static_cast<uint32_t>(thread_id), static_cast<uint32_t>(p.query));
    }
  }

  accounts_[static_cast<size_t>(thread_id)].Transition(
      prof::WorkerState::kExecuting, LatencyNs(now));

  events_.push(SimEvent{now + duration, event_seq_++, SimEvent::kWorkOrderDone,
                        thread_id});
}

int SimEngine::AssignThreads(double now) {
  int dispatched = 0;
  while (true) {
    // Candidate pipelines with pending fused work whose query is below its
    // parallelism cap.
    std::vector<int> candidates;
    for (size_t i = 0; i < active_pipelines_.size(); ++i) {
      const ActivePipeline& p = active_pipelines_[i];
      if (p.dead) continue;
      if (p.retry_ready.empty() && p.next_wo >= p.total_fused) continue;
      if (p.not_before > now + 1e-12) continue;  // retry backoff pending
      QueryState* q = ctx_.FindQuery(p.query);
      if (q == nullptr) continue;
      const int cap =
          q->max_threads() > 0 ? q->max_threads() : config_.num_threads;
      if (q->assigned_threads() >= cap) continue;
      candidates.push_back(static_cast<int>(i));
    }
    if (candidates.empty()) return dispatched;

    // Pick a free thread, preferring one with locality to some candidate.
    int thread_id = -1;
    int chosen_pipeline = -1;
    for (const ThreadInfo& t : ctx_.threads()) {
      if (t.busy) continue;
      for (int ci : candidates) {
        if (active_pipelines_[static_cast<size_t>(ci)].query == t.last_query) {
          thread_id = t.id;
          chosen_pipeline = ci;
          break;
        }
      }
      if (thread_id >= 0) break;
    }
    if (thread_id < 0) {
      for (const ThreadInfo& t : ctx_.threads()) {
        if (!t.busy) {
          thread_id = t.id;
          break;
        }
      }
      if (thread_id < 0) return dispatched;  // no free thread
      // Least-loaded query first (fair progress among scheduled pipelines).
      double best_load = 1e300;
      for (int ci : candidates) {
        const ActivePipeline& p = active_pipelines_[static_cast<size_t>(ci)];
        if (const QueryState* q = ctx_.FindQuery(p.query)) {
          const double load = static_cast<double>(q->assigned_threads());
          if (load < best_load) {
            best_load = load;
            chosen_pipeline = ci;
          }
        }
      }
    }
    if (chosen_pipeline < 0) return dispatched;
    DispatchTo(thread_id, chosen_pipeline, now);
    ++dispatched;
  }
}

void SimEngine::InvokeScheduler(const SchedulingEvent& event,
                                Scheduler* scheduler, double now) {
  // Per §5.2: no decisions if all threads are busy or nothing to schedule.
  // Exception: a query-cancelled event is a lifecycle notification the
  // policy must always see (it may be tracking the query), even when no
  // decision is currently possible.
  ctx_.set_now(now);
  const bool lifecycle = event.type == SchedulingEventType::kQueryCancelled;
  for (int round = 0; round < config_.max_rounds_per_event; ++round) {
    const bool can_schedule =
        ctx_.num_free_threads() > 0 && ctx_.AnySchedulableOp();
    if (!can_schedule && !(lifecycle && round == 0)) return;
    Stopwatch sw;
    SchedulingDecision decision = scheduler->Schedule(event, ctx_);
    // Serving layer post-processing (priority classes, weighted fairness)
    // sits between the policy and the engine; ApplyDecision re-validates
    // every choice, so injected launches can never corrupt run state.
    if (config_.hooks != nullptr) {
      config_.hooks->FilterDecision(&decision, ctx_);
    }
    current_decision_id_ = recorder_.OnSchedulerInvocation(
        event, ctx_, decision, sw.ElapsedSeconds());
    if (decision.empty()) return;
    const size_t before = active_pipelines_.size();
    ApplyDecision(decision, now);
    AssignThreads(now);
    if (active_pipelines_.size() == before) return;  // no new pipelines
  }
}

void SimEngine::ForceFallbackSchedule(double now) {
  // Deadlock guard: the policy scheduled nothing although work exists.
  // Launch the first schedulable operator of the oldest query, degree 1.
  for (QueryState* q : ctx_.queries()) {
    const std::vector<int> ops = q->SchedulableOps();
    if (ops.empty()) continue;
    SchedulingDecision d;
    d.pipelines.push_back(PipelineChoice{q->id(), ops[0], 1});
    current_decision_id_ = recorder_.OnFallback(now, ctx_, q->id());
    ApplyDecision(d, now);
    AssignThreads(now);
    return;
  }
}

EpisodeResult SimEngine::Run(const std::vector<QuerySubmission>& workload,
                             Scheduler* scheduler) {
  ResetRunState();
  recorder_.Begin("sim", scheduler, /*virtual_time=*/true, workload.size());
  scheduler->Reset();

  for (size_t i = 0; i < workload.size(); ++i) {
    events_.push(SimEvent{workload[i].arrival_time, event_seq_++,
                          SimEvent::kArrival, static_cast<int>(i)});
  }
  queries_.resize(workload.size());

  double now = 0.0;
  while (!events_.empty()) {
    const SimEvent ev = events_.top();
    events_.pop();
    now = ev.time;
    ctx_.set_now(now);
    if (now > config_.max_virtual_seconds) {
      LSCHED_LOG(Warning) << "simulation exceeded max virtual time";
      break;
    }

    if (ev.kind == SimEvent::kArrival) {
      const size_t idx = static_cast<size_t>(ev.payload);
      // queries_[idx] already set means the query was cancelled before it
      // arrived (admit-and-cancel): nothing to admit.
      if (queries_[idx] == nullptr) {
        queries_[idx] = std::make_unique<QueryState>(
            static_cast<QueryId>(idx), workload[idx].plan, now,
            config_.regression_window);
        QueryState* q = queries_[idx].get();
        q->set_tag(workload[idx].tag);
        recorder_.OnQueryArrival(*q, now);
        // Admission fault point: a kError here rejects the query (terminal
        // FAILED) before it ever reaches the scheduler.
        const FaultAction admit =
            LSCHED_FAULT("query_admit", static_cast<QueryId>(idx), now);
        if (admit && admit.type == FaultType::kError) {
          LSCHED_CHECK(q->TransitionTo(QueryStatus::kFailed));
          recorder_.OnQueryTerminated(q, now, 0);
          ++terminal_queries_;
          if (config_.hooks != nullptr) {
            config_.hooks->OnEngineRefused(*q, now);
            config_.hooks->OnQueryTerminal(*q, now);
          }
        } else if (AdmissionVerdict verdict =
                       config_.hooks != nullptr
                           ? config_.hooks->OnAdmission(*q, ctx_, now)
                           : AdmissionVerdict{};
                   !verdict.admit) {
          // Load shed: terminal before the scheduler ever sees the query.
          recorder_.OnAdmissionVerdict(q->id(), now, /*admitted=*/false,
                                       kInvalidQuery);
          LSCHED_CHECK(q->TransitionTo(QueryStatus::kShed));
          recorder_.OnQueryTerminated(q, now, 0);
          ++terminal_queries_;
          config_.hooks->OnQueryTerminal(*q, now);
        } else {
          // A higher-priority arrival may displace a pending lower-priority
          // query. Only ADMITTED (never-launched) queries are eligible — a
          // stale/illegal victim id is ignored rather than fatal.
          QueryId displaced = kInvalidQuery;
          if (verdict.displace != kInvalidQuery) {
            const size_t vi = static_cast<size_t>(verdict.displace);
            if (vi < queries_.size() && queries_[vi] != nullptr &&
                queries_[vi]->status() == QueryStatus::kAdmitted) {
              displaced = verdict.displace;
            }
          }
          recorder_.OnAdmissionVerdict(q->id(), now, /*admitted=*/true,
                                       displaced);
          if (displaced != kInvalidQuery) {
            recorder_.OnQueryDisplaced(displaced, q->id(), now);
            if (TerminateQuery(displaced, QueryStatus::kShed, now)) {
              SchedulingEvent shed_ev;
              shed_ev.type = SchedulingEventType::kQueryCancelled;
              shed_ev.time = now;
              shed_ev.query = displaced;
              InvokeScheduler(shed_ev, scheduler, now);
            }
          }
          ctx_.AddQuery(q);
          SchedulingEvent se;
          se.type = SchedulingEventType::kQueryArrival;
          se.time = now;
          se.query = static_cast<QueryId>(idx);
          InvokeScheduler(se, scheduler, now);
          AssignThreads(now);
        }
      }
    } else if (ev.kind == SimEvent::kCancel) {
      const CancelRequest& cr = config_.cancels[static_cast<size_t>(ev.payload)];
      if (cr.query >= 0 && static_cast<size_t>(cr.query) < queries_.size()) {
        const size_t idx = static_cast<size_t>(cr.query);
        if (queries_[idx] == nullptr) {
          // Not yet arrived: admit-and-cancel so the terminal status is
          // deterministic regardless of arrival/cancel ordering.
          queries_[idx] = std::make_unique<QueryState>(
              cr.query, workload[idx].plan, now, config_.regression_window);
          QueryState* q = queries_[idx].get();
          q->set_tag(workload[idx].tag);
          recorder_.OnQueryArrival(*q, now);
          LSCHED_CHECK(q->TransitionTo(QueryStatus::kCancelled));
          recorder_.OnQueryTerminated(q, now, 0);
          ++terminal_queries_;
          if (config_.hooks != nullptr) {
            config_.hooks->OnEngineRefused(*q, now);
            config_.hooks->OnQueryTerminal(*q, now);
          }
        } else if (TerminateQuery(cr.query, QueryStatus::kCancelled, now)) {
          // The cancel freed this query's claim on threads/memory: tell the
          // scheduler so it can re-plan, then backfill the pool.
          SchedulingEvent se;
          se.type = SchedulingEventType::kQueryCancelled;
          se.time = now;
          se.query = cr.query;
          InvokeScheduler(se, scheduler, now);
          AssignThreads(now);
        }
      }
    } else if (ev.kind == SimEvent::kRetryReady) {
      // A retry backoff elapsed; backfill idle threads.
      AssignThreads(now);
    } else if (ev.kind == SimEvent::kPoolChange) {
      const ThreadPoolEvent& change =
          config_.thread_events[static_cast<size_t>(ev.payload)];
      SchedulingEvent se;
      se.time = now;
      if (change.delta > 0) {
        for (int k = 0; k < change.delta; ++k) {
          SimThread t;
          t.id = static_cast<int>(threads_.size());
          threads_.push_back(t);
          ThreadInfo info;
          info.id = t.id;
          ctx_.AddThread(info);
          accounts_.emplace_back();
          accounts_.back().Start(LatencyNs(now), prof::WorkerState::kIdle);
        }
        se.type = SchedulingEventType::kThreadAdded;
      } else if (change.delta < 0) {
        int to_remove = -change.delta;
        for (SimThread& t : threads_) {
          if (to_remove == 0) break;
          const ThreadInfo* info = ctx_.thread(t.id);
          if (!t.retired && info != nullptr && !info->busy) {
            t.retired = true;
            ctx_.RetireThread(t.id);
            accounts_[static_cast<size_t>(t.id)].Stop(LatencyNs(now));
            --to_remove;
          }
        }
        // Busy threads retire as their current work order completes.
        pending_thread_removals_ += to_remove;
        se.type = SchedulingEventType::kThreadRemoved;
      }
      InvokeScheduler(se, scheduler, now);
      AssignThreads(now);
    } else {  // kWorkOrderDone
      SimThread& t = threads_[static_cast<size_t>(ev.payload)];
      const int pipeline_idx = t.pipeline_index;
      LSCHED_CHECK(pipeline_idx >= 0);
      ActivePipeline& p =
          active_pipelines_[static_cast<size_t>(pipeline_idx)];
      // The owning query may already be terminal (cancelled/failed while
      // this attempt was in flight), in which case it has left the
      // scheduling context — resolve it through the owning store instead.
      QueryState* q = queries_[static_cast<size_t>(p.query)].get();
      LSCHED_CHECK(q != nullptr);
      const int wo_index = t.wo_index;
      const bool attempt_failed = t.attempt_failed;
      const double busy_since = t.busy_since;

      // Free the thread first — identical bookkeeping for every outcome.
      --p.inflight;
      ctx_.SetThreadIdle(t.id, p.query);
      t.pipeline_index = -1;
      t.wo_index = -1;
      t.attempt_failed = false;
      q->set_assigned_threads(q->assigned_threads() - 1);
      if (pending_thread_removals_ > 0 && !t.retired) {
        t.retired = true;
        ctx_.RetireThread(t.id);
        --pending_thread_removals_;
      }
      {
        prof::WorkerAccount& acct = accounts_[static_cast<size_t>(t.id)];
        if (t.retired) {
          acct.Stop(LatencyNs(now));
        } else {
          // Work outstanding anywhere in the system means this free thread
          // is stalled on a dependency, not idle.
          const bool work_exists =
              AnyPendingFusedWork() || !ctx_.queries().empty();
          acct.Transition(work_exists ? prof::WorkerState::kStalled
                                      : prof::WorkerState::kIdle,
                          LatencyNs(now));
        }
      }

      std::vector<int> completed_ops;
      bool emit_cancel_event = false;
      if (p.dead) {
        // The query reached a terminal state while this attempt was in
        // flight: throw the result away.
        recorder_.OnWorkOrderDiscarded();
      } else if (attempt_failed) {
        recorder_.OnWorkOrderFailed(p.query, now);
        const int attempt = ++p.attempts[wo_index];
        if (attempt > config_.retry.max_retries) {
          // Retry budget exhausted: the whole query fails.
          TerminateQuery(p.query, QueryStatus::kFailed, now);
          emit_cancel_event = true;
        } else {
          recorder_.OnWorkOrderRetried(p.query, now);
          p.retry_ready.push_back(wo_index);
          const double backoff = config_.retry.BackoffFor(attempt);
          if (backoff > 0.0) {
            p.not_before = std::max(p.not_before, now + backoff);
            events_.push(SimEvent{now + backoff, event_seq_++,
                                  SimEvent::kRetryReady, pipeline_idx});
          }
        }
      } else {
        // Success: advance every pipeline member proportionally and detect
        // operator completions.
        const double fused_total = static_cast<double>(p.total_fused);
        for (size_t s = 0; s < p.chain.size(); ++s) {
          const int op = p.chain[s];
          const double amount =
              static_cast<double>(q->plan().node(op).num_work_orders) /
              fused_total;
          const double op_share =
              p.est_seconds_per_fused / static_cast<double>(p.chain.size());
          const double mem_share =
              q->plan().node(op).est_mem_per_wo * amount;
          if (q->AdvanceOperator(op, amount, op_share, mem_share)) {
            completed_ops.push_back(op);
          }
        }
        // Operator progress changed (O-WO/O-DUR/O-MEM, possibly completion
        // flags): invalidate cached encodings for this query.
        ctx_.MarkQueryDirty(q->id());
        q->AddAttainedService(p.est_seconds_per_fused);
        recorder_.OnWorkOrderCompleted(p.query, p.decision_id,
                                       now - busy_since, now);
        ++p.succeeded;

        // Retire fully-executed pipelines (swap-erase keeps indices of
        // other pipelines stable only if we fix thread references, so mark
        // instead). We leave exhausted pipelines in place; they are
        // skipped by AssignThreads and cleared when the run ends.

        const bool query_done = q->completed();
        if (query_done && q->completion_time() < 0.0) {
          recorder_.OnQueryCompleted(q, now);
          ++terminal_queries_;
          ctx_.RemoveQuery(q->id());
          if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*q, now);
        }
      }

      // Re-dispatch pending work first; the scheduler is only consulted on
      // the major events of §5.2 — an operator completing, a thread left
      // with nothing to do, or a query leaving the system — not on every
      // work-order completion.
      AssignThreads(now);
      SchedulingEvent se;
      se.time = now;
      bool should_invoke = false;
      if (emit_cancel_event) {
        se.type = SchedulingEventType::kQueryCancelled;
        se.query = p.query;
        should_invoke = true;
      } else if (!completed_ops.empty()) {
        se.type = SchedulingEventType::kOperatorCompleted;
        se.query = p.query;
        se.op = completed_ops.front();
        should_invoke = true;
      } else {
        // A retired thread (nullptr) still surfaces its final idle event.
        const ThreadInfo* info = ctx_.thread(t.id);
        if (info == nullptr || !info->busy) {
          se.type = SchedulingEventType::kThreadIdle;
          se.thread = t.id;
          should_invoke = true;
        }
      }
      if (should_invoke) {
        InvokeScheduler(se, scheduler, now);
        AssignThreads(now);
      }
    }

    // Deadlock guard: live queries but no running or pending work.
    const bool any_busy = ctx_.num_free_threads() != ctx_.total_threads();
    if (!any_busy && !AnyPendingFusedWork() &&
        terminal_queries_ < static_cast<int>(queries_.size()) &&
        events_.empty()) {
      if (!ctx_.queries().empty()) {
        ForceFallbackSchedule(now);
      }
    }
  }

  // Close every still-live account at the final virtual time and hand the
  // exact buckets to the recorder (Stop on an already-stopped/retired
  // account re-charges a zero-length interval, so this is safe for all).
  std::vector<prof::WorkerStateBuckets> worker_states;
  worker_states.reserve(accounts_.size());
  for (size_t i = 0; i < accounts_.size(); ++i) {
    if (!threads_[i].retired) accounts_[i].Stop(LatencyNs(now));
    worker_states.push_back(accounts_[i].Read());
  }
  recorder_.OnWorkerStates(std::move(worker_states));

  recorder_.Finalize(now);
  return recorder_.Take();
}

}  // namespace lsched

#include "exec/sim_engine.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

SimEngine::SimEngine(SimEngineConfig config)
    : config_(std::move(config)), cost_model_(config_.cost_params) {}

void SimEngine::ResetRunState() {
  rng_ = Rng(config_.seed);
  queries_.clear();
  threads_.assign(static_cast<size_t>(config_.num_threads), SimThread{});
  ctx_.Reset();
  for (size_t i = 0; i < threads_.size(); ++i) {
    threads_[i].id = static_cast<int>(i);
    ThreadInfo info;
    info.id = threads_[i].id;
    ctx_.AddThread(info);
  }
  active_pipelines_.clear();
  while (!events_.empty()) events_.pop();
  event_seq_ = 0;
  current_decision_id_ = -1;
  completed_queries_ = 0;
  pending_thread_removals_ = 0;
  for (size_t i = 0; i < config_.thread_events.size(); ++i) {
    events_.push(SimEvent{config_.thread_events[i].time, event_seq_++,
                          SimEvent::kPoolChange, static_cast<int>(i)});
  }
}

bool SimEngine::AnyPendingFusedWork() const {
  for (const ActivePipeline& p : active_pipelines_) {
    if (p.dispatched < p.total_fused) return true;
  }
  return false;
}

void SimEngine::ApplyDecision(const SchedulingDecision& decision, double now) {
  (void)now;
  for (const ParallelismChoice& pc : decision.parallelism) {
    if (QueryState* q = ctx_.FindQuery(pc.query)) {
      q->set_max_threads(std::max(0, pc.max_threads));
    }
  }
  for (const PipelineChoice& choice : decision.pipelines) {
    QueryState* q = ctx_.FindQuery(choice.query);
    if (q == nullptr) continue;
    if (choice.root_op < 0 ||
        choice.root_op >= static_cast<int>(q->plan().num_nodes())) {
      continue;
    }
    if (!q->IsOpSchedulable(choice.root_op)) continue;

    std::vector<int> valid = q->ValidPipelineFrom(choice.root_op);
    const int degree =
        std::clamp(choice.degree, 1, static_cast<int>(valid.size()));
    valid.resize(static_cast<size_t>(degree));

    ActivePipeline pipeline;
    pipeline.query = q->id();
    pipeline.chain = valid;
    pipeline.total_fused =
        std::max(q->plan().node(valid[0]).num_work_orders, 1);
    pipeline.est_seconds_per_fused =
        cost_model_.PipelineWorkOrderSeconds(q->plan(), valid);
    pipeline.memory = cost_model_.PipelineMemory(q->plan(), valid);
    pipeline.created_at = now;
    pipeline.decision_id = current_decision_id_;
    for (int op : valid) q->set_op_scheduled(op, true);
    // Scheduling flags entered the query's feature inputs: invalidate
    // cached encodings.
    ctx_.MarkQueryDirty(q->id());
    recorder_.OnPipelineLaunched(current_decision_id_, q->id(), valid[0],
                                 degree, pipeline.total_fused, now);
    active_pipelines_.push_back(std::move(pipeline));
  }
}

void SimEngine::DispatchTo(int thread_id, int pipeline_idx, double now) {
  ActivePipeline& p = active_pipelines_[static_cast<size_t>(pipeline_idx)];
  SimThread& t = threads_[static_cast<size_t>(thread_id)];

  QueryState* q = ctx_.FindQuery(p.query);
  LSCHED_CHECK(q != nullptr);

  double duration = p.est_seconds_per_fused;
  const double noise =
      std::max(0.05, rng_.Normal(1.0, config_.cost_params.noise_cv));
  duration *= noise;
  const ThreadInfo* info = ctx_.thread(thread_id);
  LSCHED_CHECK(info != nullptr);
  if (info->last_query == p.query) {
    duration *= (1.0 - config_.cost_params.locality_gain);
  }
  // Intra-query contention: k threads (incl. this one) on the same query.
  duration *= 1.0 + config_.cost_params.intra_query_contention *
                        static_cast<double>(q->assigned_threads());
  duration = std::max(duration, 1e-9);

  const bool first_dispatch = p.dispatched == 0;
  ++p.dispatched;
  ++p.inflight;
  ctx_.SetThreadBusy(thread_id, p.query);
  t.pipeline_index = pipeline_idx;
  t.busy_since = now;
  t.busy_until = now + duration;
  q->set_assigned_threads(q->assigned_threads() + 1);
  const int inflight = ctx_.total_threads() - ctx_.num_free_threads();
  recorder_.OnWorkOrderDispatched(inflight, now - p.created_at);

  if (obs::Enabled()) {
    // Virtual-time spans: the work order's full extent is known at
    // dispatch, so record it immediately against the simulated thread.
    recorder_.RecordVirtualSpan(
        EpisodeRecorder::SimSpanKind::kWorkOrder, now * 1e6,
        static_cast<float>(duration * 1e6), static_cast<uint32_t>(thread_id),
        static_cast<uint32_t>(p.query), pipeline_idx);
    if (first_dispatch && now > p.created_at) {
      recorder_.RecordVirtualSpan(
          EpisodeRecorder::SimSpanKind::kQueueWait, p.created_at * 1e6,
          static_cast<float>((now - p.created_at) * 1e6),
          static_cast<uint32_t>(thread_id), static_cast<uint32_t>(p.query));
    }
  }

  events_.push(SimEvent{now + duration, event_seq_++, SimEvent::kWorkOrderDone,
                        thread_id});
}

int SimEngine::AssignThreads(double now) {
  int dispatched = 0;
  while (true) {
    // Candidate pipelines with pending fused work whose query is below its
    // parallelism cap.
    std::vector<int> candidates;
    for (size_t i = 0; i < active_pipelines_.size(); ++i) {
      const ActivePipeline& p = active_pipelines_[i];
      if (p.dispatched >= p.total_fused) continue;
      QueryState* q = ctx_.FindQuery(p.query);
      if (q == nullptr) continue;
      const int cap =
          q->max_threads() > 0 ? q->max_threads() : config_.num_threads;
      if (q->assigned_threads() >= cap) continue;
      candidates.push_back(static_cast<int>(i));
    }
    if (candidates.empty()) return dispatched;

    // Pick a free thread, preferring one with locality to some candidate.
    int thread_id = -1;
    int chosen_pipeline = -1;
    for (const ThreadInfo& t : ctx_.threads()) {
      if (t.busy) continue;
      for (int ci : candidates) {
        if (active_pipelines_[static_cast<size_t>(ci)].query == t.last_query) {
          thread_id = t.id;
          chosen_pipeline = ci;
          break;
        }
      }
      if (thread_id >= 0) break;
    }
    if (thread_id < 0) {
      for (const ThreadInfo& t : ctx_.threads()) {
        if (!t.busy) {
          thread_id = t.id;
          break;
        }
      }
      if (thread_id < 0) return dispatched;  // no free thread
      // Least-loaded query first (fair progress among scheduled pipelines).
      double best_load = 1e300;
      for (int ci : candidates) {
        const ActivePipeline& p = active_pipelines_[static_cast<size_t>(ci)];
        if (const QueryState* q = ctx_.FindQuery(p.query)) {
          const double load = static_cast<double>(q->assigned_threads());
          if (load < best_load) {
            best_load = load;
            chosen_pipeline = ci;
          }
        }
      }
    }
    if (chosen_pipeline < 0) return dispatched;
    DispatchTo(thread_id, chosen_pipeline, now);
    ++dispatched;
  }
}

void SimEngine::InvokeScheduler(const SchedulingEvent& event,
                                Scheduler* scheduler, double now) {
  // Per §5.2: no decisions if all threads are busy or nothing to schedule.
  ctx_.set_now(now);
  for (int round = 0; round < config_.max_rounds_per_event; ++round) {
    if (ctx_.num_free_threads() == 0) return;
    if (!ctx_.AnySchedulableOp()) return;
    Stopwatch sw;
    const SchedulingDecision decision = scheduler->Schedule(event, ctx_);
    current_decision_id_ = recorder_.OnSchedulerInvocation(
        event, ctx_, decision, sw.ElapsedSeconds());
    if (decision.empty()) return;
    const size_t before = active_pipelines_.size();
    ApplyDecision(decision, now);
    AssignThreads(now);
    if (active_pipelines_.size() == before) return;  // no new pipelines
  }
}

void SimEngine::ForceFallbackSchedule(double now) {
  // Deadlock guard: the policy scheduled nothing although work exists.
  // Launch the first schedulable operator of the oldest query, degree 1.
  for (QueryState* q : ctx_.queries()) {
    const std::vector<int> ops = q->SchedulableOps();
    if (ops.empty()) continue;
    SchedulingDecision d;
    d.pipelines.push_back(PipelineChoice{q->id(), ops[0], 1});
    current_decision_id_ = recorder_.OnFallback(now);
    ApplyDecision(d, now);
    AssignThreads(now);
    return;
  }
}

EpisodeResult SimEngine::Run(const std::vector<QuerySubmission>& workload,
                             Scheduler* scheduler) {
  ResetRunState();
  recorder_.Begin("sim", scheduler, /*virtual_time=*/true);
  scheduler->Reset();

  for (size_t i = 0; i < workload.size(); ++i) {
    events_.push(SimEvent{workload[i].arrival_time, event_seq_++,
                          SimEvent::kArrival, static_cast<int>(i)});
  }
  queries_.resize(workload.size());

  double now = 0.0;
  while (!events_.empty()) {
    const SimEvent ev = events_.top();
    events_.pop();
    now = ev.time;
    ctx_.set_now(now);
    if (now > config_.max_virtual_seconds) {
      LSCHED_LOG(Warning) << "simulation exceeded max virtual time";
      break;
    }

    if (ev.kind == SimEvent::kArrival) {
      const size_t idx = static_cast<size_t>(ev.payload);
      queries_[idx] = std::make_unique<QueryState>(
          static_cast<QueryId>(idx), workload[idx].plan, now,
          config_.regression_window);
      ctx_.AddQuery(queries_[idx].get());
      SchedulingEvent se;
      se.type = SchedulingEventType::kQueryArrival;
      se.time = now;
      se.query = static_cast<QueryId>(idx);
      InvokeScheduler(se, scheduler, now);
      AssignThreads(now);
    } else if (ev.kind == SimEvent::kPoolChange) {
      const ThreadPoolEvent& change =
          config_.thread_events[static_cast<size_t>(ev.payload)];
      SchedulingEvent se;
      se.time = now;
      if (change.delta > 0) {
        for (int k = 0; k < change.delta; ++k) {
          SimThread t;
          t.id = static_cast<int>(threads_.size());
          threads_.push_back(t);
          ThreadInfo info;
          info.id = t.id;
          ctx_.AddThread(info);
        }
        se.type = SchedulingEventType::kThreadAdded;
      } else if (change.delta < 0) {
        int to_remove = -change.delta;
        for (SimThread& t : threads_) {
          if (to_remove == 0) break;
          const ThreadInfo* info = ctx_.thread(t.id);
          if (!t.retired && info != nullptr && !info->busy) {
            t.retired = true;
            ctx_.RetireThread(t.id);
            --to_remove;
          }
        }
        // Busy threads retire as their current work order completes.
        pending_thread_removals_ += to_remove;
        se.type = SchedulingEventType::kThreadRemoved;
      }
      InvokeScheduler(se, scheduler, now);
      AssignThreads(now);
    } else {  // kWorkOrderDone
      SimThread& t = threads_[static_cast<size_t>(ev.payload)];
      const int pipeline_idx = t.pipeline_index;
      LSCHED_CHECK(pipeline_idx >= 0);
      ActivePipeline& p =
          active_pipelines_[static_cast<size_t>(pipeline_idx)];
      QueryState* q = ctx_.FindQuery(p.query);
      LSCHED_CHECK(q != nullptr);

      // Advance every pipeline member proportionally and detect
      // operator completions.
      std::vector<int> completed_ops;
      const double fused_total = static_cast<double>(p.total_fused);
      for (size_t s = 0; s < p.chain.size(); ++s) {
        const int op = p.chain[s];
        const double amount =
            static_cast<double>(q->plan().node(op).num_work_orders) /
            fused_total;
        const double op_share =
            p.est_seconds_per_fused / static_cast<double>(p.chain.size());
        const double mem_share =
            q->plan().node(op).est_mem_per_wo * amount;
        if (q->AdvanceOperator(op, amount, op_share, mem_share)) {
          completed_ops.push_back(op);
        }
      }
      // Operator progress changed (O-WO/O-DUR/O-MEM, possibly completion
      // flags): invalidate cached encodings for this query.
      ctx_.MarkQueryDirty(q->id());

      q->AddAttainedService(p.est_seconds_per_fused);
      recorder_.OnWorkOrderCompleted(p.decision_id, now - t.busy_since);
      --p.inflight;
      ctx_.SetThreadIdle(t.id, p.query);
      t.pipeline_index = -1;
      q->set_assigned_threads(q->assigned_threads() - 1);
      if (pending_thread_removals_ > 0 && !t.retired) {
        t.retired = true;
        ctx_.RetireThread(t.id);
        --pending_thread_removals_;
      }

      // Retire fully-executed pipelines (swap-erase keeps indices of other
      // pipelines stable only if we fix thread references, so mark instead).
      // We leave exhausted pipelines in place; they are skipped by
      // AssignThreads and cleared when the run ends.

      const bool query_done = q->completed();
      if (query_done && q->completion_time() < 0.0) {
        recorder_.OnQueryCompleted(q, now);
        ++completed_queries_;
        ctx_.RemoveQuery(q->id());
      }

      // Re-dispatch pending work first; the scheduler is only consulted on
      // the major events of §5.2 — an operator completing, or a thread left
      // with nothing to do — not on every work-order completion.
      AssignThreads(now);
      SchedulingEvent se;
      se.time = now;
      bool should_invoke = false;
      if (!completed_ops.empty()) {
        se.type = SchedulingEventType::kOperatorCompleted;
        se.query = p.query;
        se.op = completed_ops.front();
        should_invoke = true;
      } else {
        // A retired thread (nullptr) still surfaces its final idle event.
        const ThreadInfo* info = ctx_.thread(t.id);
        if (info == nullptr || !info->busy) {
          se.type = SchedulingEventType::kThreadIdle;
          se.thread = t.id;
          should_invoke = true;
        }
      }
      if (should_invoke) {
        InvokeScheduler(se, scheduler, now);
        AssignThreads(now);
      }
    }

    // Deadlock guard: incomplete queries but no running or pending work.
    const bool any_busy = ctx_.num_free_threads() != ctx_.total_threads();
    if (!any_busy && !AnyPendingFusedWork() &&
        completed_queries_ < static_cast<int>(queries_.size()) &&
        events_.empty()) {
      if (!ctx_.queries().empty()) {
        ForceFallbackSchedule(now);
      }
    }
  }

  recorder_.Finalize(now);
  return recorder_.Take();
}

}  // namespace lsched

#ifndef LSCHED_EXEC_EPISODE_RESULT_H_
#define LSCHED_EXEC_EPISODE_RESULT_H_

#include <cstdint>
#include <vector>

#include "exec/exec_types.h"
#include "obs/profiler.h"

namespace lsched {

/// Telemetry from one workload execution ("episode" during training).
/// Assembled identically for both engines by EpisodeRecorder
/// (exec/episode_recorder.h).
struct EpisodeResult {
  std::vector<double> query_latencies;  ///< completion - arrival, per DONE query
  double avg_latency = 0.0;
  double p90_latency = 0.0;
  double makespan = 0.0;  ///< completion of last query (virtual seconds)

  /// Terminal lifecycle state per query, indexed by QueryId (empty for
  /// engines/episodes predating lifecycle tracking). After a run every
  /// entry must be terminal (DONE, CANCELLED, FAILED, or SHED).
  std::vector<QueryStatus> final_statuses;
  int num_queries_cancelled = 0;
  int num_queries_failed = 0;
  /// Queries refused (or displaced) by admission control before any work
  /// ran (DESIGN.md §11). Serving conservation:
  ///   admitted == completed + cancelled + failed + shed.
  int num_queries_shed = 0;

  int num_scheduler_invocations = 0;
  int num_actions = 0;  ///< pipelines launched by the scheduler (Fig. 13b)
  int num_fallback_decisions = 0;
  double scheduler_wall_seconds = 0.0;  ///< real time inside Schedule()

  /// --- invariant-check telemetry (consumed by src/testing) --------------
  /// Per-query arrival/completion times, in query-completion order (the
  /// same order as `query_latencies`, so latency[i] must equal
  /// completions[i] - arrivals[i]).
  std::vector<double> query_arrivals;
  std::vector<double> query_completions;
  /// Work-order conservation. Without cancellations/faults every planned
  /// fused work order is dispatched exactly once and completes exactly once
  /// (planned == dispatched == completed). Under the fault model
  /// (DESIGN.md §10) the general equations are:
  ///   planned    == completed + dropped
  ///   dispatched == completed + failed + discarded
  ///   retries    <= failed
  /// `failed` counts attempts that errored or exceeded the deadline,
  /// `discarded` attempts whose query was already terminal when they came
  /// back, `dropped` planned work orders never (re)dispatched because the
  /// query left the system, `expired` attempts observed past their deadline.
  int64_t num_work_orders_planned = 0;
  int64_t num_work_orders_dispatched = 0;
  int64_t num_work_orders_completed = 0;
  int64_t num_work_orders_failed = 0;
  int64_t num_work_orders_discarded = 0;
  int64_t num_work_orders_dropped = 0;
  int64_t num_work_orders_expired = 0;
  int64_t num_retries = 0;
  /// High-water mark of concurrently in-flight work orders; must never
  /// exceed the worker-pool size (no thread double-assignment).
  int max_inflight_work_orders = 0;

  /// --- latency decomposition (DESIGN.md §8.2) ---------------------------
  /// Per-query four-bucket latency decomposition, indexed by QueryId like
  /// `final_statuses` (entry.valid is true for every terminal query), plus
  /// the exact integer-nanosecond aggregates over all terminal queries.
  /// Invariant, checked by the differential harness: for every valid entry
  ///   admission_ns + queue_ns + service_ns + stall_ns == total_ns.
  std::vector<LatencyBreakdown> query_breakdowns;
  int64_t sum_admission_wait_ns = 0;
  int64_t sum_queue_wait_ns = 0;
  int64_t sum_service_time_ns = 0;
  int64_t sum_stall_time_ns = 0;
  int64_t sum_latency_ns = 0;
  int num_queries_decomposed = 0;

  /// --- worker-state accounting (DESIGN.md §8.3) -------------------------
  /// Per-worker exact integer-ns state buckets (dispatch-overhead,
  /// executing, idle, stalled, draining), indexed by worker id. For every
  /// worker the buckets telescope to its wall time:
  ///   sum(ns[*]) == wall_ns  (bit-exact, both engines).
  std::vector<prof::WorkerStateBuckets> worker_states;
  /// The paper's headline metric: fraction of total engine time spent on
  /// scheduling machinery rather than query work —
  ///   (scheduler_wall_seconds + Σ dispatch_ns) /
  ///   (scheduler_wall_seconds + Σ wall_ns), 0 when no workers reported.
  double sched_overhead_fraction = 0.0;

  /// (time, #running queries) at each scheduler invocation — the raw series
  /// from which the reward H_d = (t_d - t_{d-1}) * Q_d is computed (§6).
  struct DecisionRecord {
    double time = 0.0;
    int running_queries = 0;
  };
  std::vector<DecisionRecord> decisions;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_EPISODE_RESULT_H_

#ifndef LSCHED_EXEC_EPISODE_RECORDER_H_
#define LSCHED_EXEC_EPISODE_RECORDER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "exec/episode_result.h"
#include "exec/exec_types.h"
#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/trace.h"

namespace lsched {

/// Shared telemetry assembly for SimEngine and RealEngine: owns the
/// per-run EpisodeResult (latency vectors, work-order conservation
/// counters, decision series) and mirrors every event into the
/// observability layer (metrics registry, tracer, scheduler decision log).
/// Engines report raw events; this class is the single place that knows
/// how EpisodeResult and the `engine.*`/`sched.*` metrics are derived from
/// them.
///
/// Not thread-safe: all methods must be called from the engine's
/// coordinator thread (both engines already funnel scheduling state
/// through one thread).
/// Episode-local histogram accumulation: plain increments on the owning
/// (coordinator) thread, merged into the shared registry once per episode.
/// Keeps the per-work-order hot path free of atomics and TLS lookups.
struct LocalHistogram {
  obs::HistogramSnapshot snap;

  void Observe(double value) {
    const size_t b = obs::Histogram::BucketFor(value);
    if (b >= snap.bucket_counts.size()) snap.bucket_counts.resize(b + 1, 0);
    ++snap.bucket_counts[b];
    ++snap.count;
    snap.sum += value;
  }
  void Reset() { snap = obs::HistogramSnapshot{}; }
};

class EpisodeRecorder {
 public:
  EpisodeRecorder();

  /// Starts a fresh episode. `virtual_time` selects the trace timebase:
  /// true = engine `now` is virtual seconds (SimEngine), false = use the
  /// process-wide wall clock (RealEngine). `num_queries` sizes the
  /// per-query final-status vector (0 = lifecycle tracking unused).
  void Begin(const char* engine_name, Scheduler* scheduler, bool virtual_time,
             size_t num_queries = 0);

  /// Extends per-query lifecycle tracking to cover `qid`, for serving mode
  /// where the query table grows as submissions arrive instead of being
  /// sized at Begin. Newly covered ids default to ADMITTED. No-op when the
  /// final-status vector already covers `qid`.
  void TrackQuery(QueryId qid);

  /// A query entered the system (QueryState just created, tag applied).
  /// Starts the latency-decomposition timeline at `query.arrival_time()`
  /// and, when tracing is on, opens the lifetime trace with its kArrival
  /// edge. Safe to skip: any later event (or the terminal call) starts the
  /// timeline lazily from the query's arrival time.
  void OnQueryArrival(const QueryState& query, double now);

  /// The ServingHooks admission verdict for `qid` (trace edge only; the
  /// decomposition does not change until work happens). `displaced` is the
  /// victim the verdict evicted, kInvalidQuery when none.
  void OnAdmissionVerdict(QueryId qid, double now, bool admitted,
                          QueryId displaced);

  /// `victim` is about to be terminated kShed to make room for `newcomer`
  /// (priority displacement). Must be called BEFORE the victim's
  /// OnQueryTerminated so the edge lands in its trace.
  void OnQueryDisplaced(QueryId victim, QueryId newcomer, double now);

  /// One scheduler invocation (after Schedule() returned `decision`).
  /// Returns the decision-log id for attributing launched pipelines, or
  /// -1 when observability is off.
  int64_t OnSchedulerInvocation(const SchedulingEvent& event,
                                const SchedulingContext& ctx,
                                const SchedulingDecision& decision,
                                double wall_seconds);

  /// A pipeline accepted from decision `decision_id` (-1 if untracked).
  void OnPipelineLaunched(int64_t decision_id, QueryId query, int root_op,
                          int degree, int64_t planned_work_orders,
                          double now);

  /// A work order of `query` handed to a thread at engine time `now`.
  /// `retry` marks the re-dispatch of a previously failed attempt;
  /// `queue_wait_seconds` is the engine time between the pipeline's launch
  /// and this dispatch; `inflight_now` the number of busy threads
  /// including this one.
  void OnWorkOrderDispatched(QueryId query, bool retry, int inflight_now,
                             double queue_wait_seconds, double now);

  /// A work order of `query` finished at `now`, taking `seconds` of engine
  /// time.
  void OnWorkOrderCompleted(QueryId query, int64_t decision_id,
                            double seconds, double now);

  /// A dispatched work-order attempt of `query` errored or exceeded its
  /// deadline at `now`.
  void OnWorkOrderFailed(QueryId query, double now);

  /// A failed attempt of `query` was queued for re-dispatch at `now`
  /// (bumps exec.retry_total).
  void OnWorkOrderRetried(QueryId query, double now);

  /// A dispatched attempt came back after its query reached a terminal
  /// state; the result was thrown away.
  void OnWorkOrderDiscarded();

  /// An attempt was observed past its per-work-order deadline (counted even
  /// when the result is still accepted, e.g. post-execution overruns in the
  /// real engine).
  void OnWorkOrderExpired();

  /// Query completion bookkeeping; invokes scheduler->OnQueryCompleted and
  /// returns the latency.
  double OnQueryCompleted(QueryState* query, double now);

  /// A query left the system without completing. `query->status()` must
  /// already be terminal (kCancelled, kFailed, or kShed);
  /// `dropped_work_orders` is the number of planned-but-never-completed
  /// work orders it abandoned. Bumps exec.cancel_total / exec.fail_total.
  /// Like OnQueryCompleted, writes the finished LatencyBreakdown onto
  /// `query` (which is why it takes a mutable pointer) *before* the
  /// engines run ServingHooks::OnQueryTerminal.
  void OnQueryTerminated(QueryState* query, double now,
                         int64_t dropped_work_orders);

  /// The engine's deadlock guard scheduled work itself, launching `chosen`.
  /// Returns a decision-log id for the fallback pipelines. Queries in `ctx`
  /// with schedulable work that the guard passed over get kFallback trace
  /// edges (the fallback analogue of kConsideredSkipped).
  int64_t OnFallback(double now, const SchedulingContext& ctx, QueryId chosen);

  /// Virtual-time trace events the recorder knows how to buffer; expanded
  /// to full TraceEvents (names, categories, arg labels) only in Finalize.
  enum class SimSpanKind : uint8_t {
    kWorkOrder,        ///< engine.work_order; arg2 = pipeline index
    kQueueWait,        ///< sched.queue_wait
    kPipelineLaunch,   ///< sched.pipeline_launch; arg2 = root op
    kQueryCompleted,   ///< engine.query_completed (instant)
    kQueryTerminated,  ///< engine.query_terminated (instant); arg2 = status
  };

  /// Buffers a virtual-time trace event (coordinator thread only) for a
  /// single bulk hand-off to the tracer in Finalize — per-event ring
  /// locking is too expensive for the simulator's dispatch rate. The
  /// buffer is a local ring of the tracer's capacity (only the newest
  /// events can survive in the tracer anyway, so older ones are dropped
  /// here) holding 32-byte compact records instead of full TraceEvents:
  /// the ring is written ~once per simulated work order and cycles before
  /// any entry is reused, so its footprint is pure cache traffic.
  /// `dur_us` < 0 encodes an instant event; float precision (~1e-7
  /// relative) is ample for durations.
  void RecordVirtualSpan(SimSpanKind kind, double ts_us, float dur_us,
                         uint32_t tid, uint32_t query, int32_t arg2 = 0) {
    if (virtual_spans_.empty()) return;  // Begin() ran with obs disabled
    virtual_spans_[vs_next_] = {ts_us, dur_us, query, arg2, tid, kind};
    if (++vs_next_ == virtual_spans_.size()) vs_next_ = 0;
    ++vs_total_;
  }

  /// Per-worker state buckets from the engine's accountants (DESIGN.md
  /// §8.3). Stores them into the result, recomputes the episode's
  /// scheduler-overhead fraction, and publishes the
  /// exec.worker<i>.*_seconds + exec.sched_overhead_fraction gauges.
  /// Engines call this with exact buckets once the pool has stopped, and
  /// may also call it with live (racy) reads on window flushes so a
  /// serving daemon's /metrics stays fresh.
  void OnWorkerStates(std::vector<prof::WorkerStateBuckets> buckets);

  /// Publishes everything accumulated since the last flush to the shared
  /// observability layer — registry counters/histograms, per-decision
  /// realized costs into the decision log (which feeds the drift monitor's
  /// back-fill observer), and buffered virtual-time spans — WITHOUT ending
  /// the episode. A long-running serving stream calls this on a rolling
  /// window so /metrics and the drift score stay fresh with no episode-end
  /// flush; Finalize reuses it for the terminal flush, so episode-mode
  /// callers see identical totals. Idempotent when nothing accumulated.
  void FlushWindow();

  /// A copy of the running result with the derived aggregates (avg/p90,
  /// makespan = `now`) computed — an exact mid-stream snapshot. Does not
  /// mutate recorder state.
  EpisodeResult SnapshotResult(double now) const;

  /// Computes the derived aggregates (avg/p90/makespan) and flushes the
  /// final window.
  void Finalize(double makespan);

  EpisodeResult& result() { return result_; }
  const EpisodeResult& result() const { return result_; }
  EpisodeResult Take() { return std::move(result_); }

 private:
  /// Latency-decomposition tracker for one query (DESIGN.md §8.2): a
  /// four-mode state machine over integer nanoseconds. AdvanceTimeline
  /// charges `now - last` to the *current* mode, then the caller applies
  /// the state change — so segment sums telescope exactly from arrival to
  /// terminal. Always compiled (it is plain integer arithmetic, like the
  /// conservation counters); only the causal edge capture is OBS-gated.
  struct QueryTimeline {
    int64_t arrival_ns = 0;
    int64_t last_ns = 0;
    int32_t inflight = 0;         ///< this query's attempts on threads
    int32_t retries_pending = 0;  ///< failed attempts awaiting re-dispatch
    bool launched = false;        ///< first pipeline launch seen
    bool started = false;
    bool finished = false;
    LatencyBreakdown breakdown;
  };

  /// Grows/looks up the timeline for `qid`, starting it at `arrival_time`
  /// on first touch. nullptr for invalid ids.
  QueryTimeline* TimelineFor(QueryId qid, double arrival_time);
  void AdvanceTimeline(QueryTimeline& t, double now);
  /// Final advance + exact-total stamp; writes the breakdown onto `query`
  /// and into the EpisodeResult aggregates; publishes the lifetime trace.
  void FinishTimeline(QueryState* query, double now);

#if LSCHED_OBS_ENABLED
  /// Lifetime-trace edge buffers, indexed by QueryId (serving mode reuses
  /// the slot of a published query for nothing — ids are monotone).
  struct QueryEdges {
    std::vector<obs::TraceEdge> edges;
    int64_t dropped = 0;
  };
  void AddTraceEdge(QueryId qid, const obs::TraceEdge& e);
#endif

  EpisodeResult result_;
  Scheduler* scheduler_ = nullptr;
  const char* engine_name_ = "";
  bool virtual_time_ = false;
  std::vector<QueryTimeline> timelines_;
#if LSCHED_OBS_ENABLED
  bool trace_on_ = false;  ///< edge capture active (set at Begin)
  std::vector<QueryEdges> query_edges_;
  /// Per-invocation scratch: queries with a schedulable op (the
  /// considered-but-skipped set), reused to avoid per-decision allocation.
  std::vector<QueryId> considered_scratch_;
#endif

  // Realized work-order cost per decision, accumulated lock-free on the
  // coordinator thread and flushed into the global decision log once per
  // episode (Finalize). Indexed by decision_id - realized_base_.
  int64_t realized_base_ = -1;
  std::vector<double> realized_seconds_;

  struct CompactSpan {
    double ts_us;
    float dur_us;
    uint32_t query;
    int32_t arg2;
    uint32_t tid;
    SimSpanKind kind;
  };

  // Virtual-time trace events buffered until Finalize (see
  // RecordVirtualSpan): a ring of the tracer's capacity.
  std::vector<CompactSpan> virtual_spans_;
  size_t vs_next_ = 0;
  uint64_t vs_total_ = 0;
  // Finalize-only scratch for expanding CompactSpans into TraceEvents.
  std::vector<obs::TraceEvent> flush_scratch_;

  // Episode-local mirrors of the registry metrics; Finalize publishes them
  // in one batch so the per-event paths never touch shared state.
  int64_t local_invocations_ = 0;
  int64_t local_actions_ = 0;
  int64_t local_fallbacks_ = 0;
  int64_t local_dispatched_ = 0;
  int64_t local_completed_ = 0;
  int64_t local_queries_completed_ = 0;
  int64_t local_cancels_ = 0;
  int64_t local_retries_ = 0;
  int64_t local_query_failures_ = 0;
  int64_t local_sheds_ = 0;
  /// High-water already published by an earlier FlushWindow (gauge Set is
  /// monotone within an episode, so re-publishing is harmless but skipped).
  int flushed_inflight_high_water_ = 0;
  LocalHistogram lh_decision_seconds_;
  LocalHistogram lh_pipeline_degree_;
  LocalHistogram lh_queue_wait_seconds_;
  LocalHistogram lh_work_order_seconds_;
  LocalHistogram lh_query_latency_seconds_;

  // Cached metric handles (registry lookups once per process).
  obs::Counter* invocations_;
  obs::Counter* actions_;
  obs::Counter* fallbacks_;
  obs::Counter* work_orders_dispatched_;
  obs::Counter* work_orders_completed_;
  obs::Counter* queries_completed_;
  obs::Counter* cancel_total_;
  obs::Counter* retry_total_;
  obs::Counter* fail_total_;
  obs::Counter* shed_total_;
  obs::Gauge* inflight_high_water_;
  obs::Gauge* sched_overhead_fraction_;
  /// Lazily grown per-worker gauge handles, one per accounting state, so
  /// rolling OnWorkerStates calls never rebuild metric-name strings.
  std::vector<std::array<obs::Gauge*, prof::kNumWorkerStates>> worker_gauges_;
  obs::Histogram* decision_seconds_;
  obs::Histogram* pipeline_degree_;
  obs::Histogram* queue_wait_seconds_;
  obs::Histogram* work_order_seconds_;
  obs::Histogram* query_latency_seconds_;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_EPISODE_RECORDER_H_

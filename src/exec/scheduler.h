#ifndef LSCHED_EXEC_SCHEDULER_H_
#define LSCHED_EXEC_SCHEDULER_H_

#include <string>
#include <vector>

#include "exec/exec_types.h"
#include "exec/query_state.h"

namespace lsched {

class SchedulingContext;

/// Legacy (API v1) snapshot of the execution environment. Engines now
/// maintain an incremental SchedulingContext instead (DESIGN.md §9);
/// SystemState survives as a bridge type for policies that have not been
/// migrated yet and for tests that construct ad-hoc states.
struct SystemState {
  double now = 0.0;
  /// Queries that have arrived and not yet completed. Pointers remain valid
  /// for the duration of the Schedule() call only.
  std::vector<QueryState*> queries;
  std::vector<ThreadInfo> threads;

  int num_free_threads() const {
    int n = 0;
    for (const ThreadInfo& t : threads) {
      if (!t.busy) ++n;
    }
    return n;
  }

  [[deprecated(
      "O(n) linear scan; migrate to SchedulingContext::FindQuery (O(1) "
      "hash-indexed, see DESIGN.md §9)")]]
  QueryState* FindQuery(QueryId id) const {
    for (QueryState* q : queries) {
      if (q->id() == id) return q;
    }
    return nullptr;
  }
};

/// Scheduling-policy interface. Implementations include the heuristic
/// baselines (FIFO, Fair, SJF, HPF, critical path), the learned baselines
/// (Decima), and LSched itself. Engines invoke Schedule() at every
/// scheduling event (paper §5.2) and apply the returned decision.
///
/// API v2: engines call the SchedulingContext overload. A policy overrides
/// exactly one of the two Schedule() overloads — the other's default
/// implementation bridges to it (context → materialized snapshot, or
/// snapshot → bridge context), so v1 policies keep working unchanged and
/// v2 policies still answer legacy callers. Overriding neither is a
/// programming error caught at runtime (the bridges would recurse).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called at the start of each workload/episode.
  virtual void Reset() {}

  /// API v2 entry point: produces scheduling decisions for `event` given
  /// the engine's incremental context. An empty decision means "keep
  /// running what is already scheduled". Default bridges to the legacy
  /// overload via a materialized snapshot.
  virtual SchedulingDecision Schedule(const SchedulingEvent& event,
                                      const SchedulingContext& ctx);

  /// Legacy (API v1) entry point. Default bridges to the context overload.
  virtual SchedulingDecision Schedule(const SchedulingEvent& event,
                                      const SystemState& state);

  /// Feedback when a query finishes (latency = completion - arrival).
  virtual void OnQueryCompleted(QueryId query, double latency) {
    (void)query;
    (void)latency;
  }

 private:
  /// Guards against a subclass overriding neither Schedule overload.
  int bridge_depth_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SCHEDULER_H_

#ifndef LSCHED_EXEC_SCHEDULER_H_
#define LSCHED_EXEC_SCHEDULER_H_

#include <string>
#include <vector>

#include "exec/exec_types.h"
#include "exec/query_state.h"

namespace lsched {

/// Read-only snapshot of the execution environment handed to schedulers at
/// each scheduling event.
struct SystemState {
  double now = 0.0;
  /// Queries that have arrived and not yet completed. Pointers remain valid
  /// for the duration of the Schedule() call only.
  std::vector<QueryState*> queries;
  std::vector<ThreadInfo> threads;

  int num_free_threads() const {
    int n = 0;
    for (const ThreadInfo& t : threads) {
      if (!t.busy) ++n;
    }
    return n;
  }

  QueryState* FindQuery(QueryId id) const {
    for (QueryState* q : queries) {
      if (q->id() == id) return q;
    }
    return nullptr;
  }
};

/// Scheduling-policy interface. Implementations include the heuristic
/// baselines (FIFO, Fair, SJF, HPF, critical path), the learned baselines
/// (Decima), and LSched itself. Engines invoke Schedule() at every
/// scheduling event (paper §5.2) and apply the returned decision.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Called at the start of each workload/episode.
  virtual void Reset() {}

  /// Produces scheduling decisions for `event` given `state`. An empty
  /// decision means "keep running what is already scheduled".
  virtual SchedulingDecision Schedule(const SchedulingEvent& event,
                                      const SystemState& state) = 0;

  /// Feedback when a query finishes (latency = completion - arrival).
  virtual void OnQueryCompleted(QueryId query, double latency) {
    (void)query;
    (void)latency;
  }
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SCHEDULER_H_

#ifndef LSCHED_EXEC_EXEC_TYPES_H_
#define LSCHED_EXEC_EXEC_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsched {

using QueryId = int64_t;
inline constexpr QueryId kInvalidQuery = -1;

/// --- multi-tenant serving (DESIGN.md §11) ---------------------------------

using TenantId = int32_t;
inline constexpr TenantId kDefaultTenant = 0;

/// Priority class of a query. Strict ordering: the serving layer never
/// schedules a lower class while a higher class has schedulable work and
/// free capacity (enforced at decision post-processing, not inside
/// policies).
enum class QueryPriority : uint8_t {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

const char* QueryPriorityName(QueryPriority p);

/// Serving metadata attached to a query at submission. Engines thread it
/// through QueryState untouched; only the serving layer (admission,
/// fairness, per-tenant metrics) interprets it.
struct QueryTag {
  TenantId tenant = kDefaultTenant;
  QueryPriority priority = QueryPriority::kNormal;
};

/// Converts an engine timestamp (virtual or wall seconds) to the integer
/// nanosecond timebase of LatencyBreakdown. One shared rounding rule for
/// both engines, so identical event sequences derive bit-identical
/// decompositions.
inline int64_t LatencyNs(double seconds) {
  return static_cast<int64_t>(seconds * 1e9 + (seconds >= 0.0 ? 0.5 : -0.5));
}

/// Canonical latency decomposition of one query's lifetime (DESIGN.md
/// §8.2): where every nanosecond between arrival and the terminal
/// transition went. Segments are integer nanoseconds accumulated by
/// telescoping the engine's event stream, so the invariant
///
///   admission_ns + queue_ns + service_ns + stall_ns == total_ns
///
/// holds EXACTLY (integer equality, no floating-point slop) for every
/// terminal query, in both engines, in every build mode.
///
///  * admission_ns — arrival until the first pipeline launch (the query sat
///    in the admitted set; for refused/shed queries the whole lifetime).
///  * queue_ns    — launched, but no work-order attempt in flight and no
///    retry pending (waiting for a thread).
///  * service_ns  — at least one work-order attempt of the query in flight.
///  * stall_ns    — no attempt in flight but a failed attempt awaits
///    re-dispatch (retry backoff / fault recovery).
struct LatencyBreakdown {
  int64_t admission_ns = 0;
  int64_t queue_ns = 0;
  int64_t service_ns = 0;
  int64_t stall_ns = 0;
  int64_t total_ns = 0;  ///< terminal time - arrival time
  int32_t dispatches = 0;  ///< work-order attempts handed to threads
  int32_t retries = 0;     ///< failed attempts queued for re-dispatch
  bool valid = false;      ///< set when the query reached a terminal state

  int64_t SumNs() const {
    return admission_ns + queue_ns + service_ns + stall_ns;
  }
  double admission_seconds() const { return admission_ns * 1e-9; }
  double queue_seconds() const { return queue_ns * 1e-9; }
  double service_seconds() const { return service_ns * 1e-9; }
  double stall_seconds() const { return stall_ns * 1e-9; }
  double total_seconds() const { return total_ns * 1e-9; }
};

/// The major events that trigger the scheduler (paper §5.2). The scheduler
/// is NOT invoked per work order — only on these events.
enum class SchedulingEventType : uint8_t {
  kQueryArrival = 0,      ///< a new query entered the system
  kOperatorCompleted,     ///< a scheduled operator finished all work orders
  kThreadIdle,            ///< a worker thread has no more assigned work
  kThreadAdded,           ///< the worker pool grew
  kThreadRemoved,         ///< the worker pool shrank
  kQueryCancelled,        ///< a query left the system without completing
                          ///< (cancellation or failure) and freed its threads
};

const char* SchedulingEventTypeName(SchedulingEventType t);

/// A scheduled change to the worker pool size (paper §5.1: "the worker
/// threads pool can shrink or grow dynamically during execution"; §5.2
/// events (1)). Positive delta adds threads; negative removes idle threads
/// (busy ones retire when their current work order completes). Times are
/// virtual seconds in SimEngine and run-clock seconds in RealEngine.
struct ThreadPoolEvent {
  double time = 0.0;
  int delta = 0;
};

/// Query lifecycle (DESIGN.md §10): ADMITTED -> RUNNING -> {DONE, CANCELLED,
/// FAILED}. Cancellation/failure is legal from either live state; terminal
/// states are absorbing, which makes double-cancel and cancel-after-done
/// structural no-ops.
enum class QueryStatus : uint8_t {
  kAdmitted = 0,  ///< arrived, no pipeline launched yet
  kRunning,       ///< at least one pipeline launched
  kDone,          ///< all operators completed
  kCancelled,     ///< torn down by CancelQuery / a scripted cancellation
  kFailed,        ///< a work order exhausted its retry budget (or admission
                  ///< was rejected)
  kShed,          ///< load-shed by admission control before any work ran
                  ///< (DESIGN.md §11): the system refused the query under
                  ///< overload, or displaced it for a higher-priority arrival
};

const char* QueryStatusName(QueryStatus s);

inline bool IsTerminalStatus(QueryStatus s) {
  return s == QueryStatus::kDone || s == QueryStatus::kCancelled ||
         s == QueryStatus::kFailed || s == QueryStatus::kShed;
}

/// Retry/backoff policy for failed or deadline-expired work-order attempts:
/// a work order may be retried `max_retries` times; one more failure marks
/// the whole query FAILED. Backoff delays the pipeline's next dispatch.
struct RetryPolicy {
  int max_retries = 2;
  double backoff_seconds = 0.0;       ///< delay before the first retry
  double backoff_multiplier = 2.0;    ///< exponential growth per retry
  /// Backoff before retry number `attempt` (1-based: the delay after the
  /// attempt-th failure of a work order).
  double BackoffFor(int attempt) const {
    double b = backoff_seconds;
    for (int i = 1; i < attempt; ++i) b *= backoff_multiplier;
    return b;
  }
};

/// A scripted cancellation: cancel `query` at engine time `time` (virtual
/// seconds in SimEngine, run-clock seconds in RealEngine). A cancel at or
/// before the query's arrival cancels it on admission, before any work runs.
struct CancelRequest {
  QueryId query = kInvalidQuery;
  double time = 0.0;
};

struct SchedulingEvent {
  SchedulingEventType type = SchedulingEventType::kQueryArrival;
  double time = 0.0;
  QueryId query = kInvalidQuery;  ///< for arrival / operator completion
  int op = -1;                    ///< for operator completion
  int thread = -1;                ///< for thread events
};

/// One unit of work: one (possibly fused pipeline) work order. In the
/// simulator a fused work order pushes one root block through the whole
/// scheduled pipeline; in the real engine it additionally carries the block
/// index to process.
struct WorkOrder {
  QueryId query = kInvalidQuery;
  std::vector<int> chain;  ///< pipeline member op ids, root first
  int index = 0;           ///< work-order sequence number within the pipeline
  double est_seconds = 0.0;
};

/// A scheduling decision: which pipelines to launch (execution root +
/// pipeline degree, paper §5.3.1–5.3.2) and per-query thread caps
/// (parallelism degree, §5.3.3). Queries without an entry keep their cap.
struct PipelineChoice {
  QueryId query = kInvalidQuery;
  int root_op = -1;
  int degree = 1;  ///< number of operators in the pipeline (>= 1)
};

struct ParallelismChoice {
  QueryId query = kInvalidQuery;
  int max_threads = 0;
};

struct SchedulingDecision {
  std::vector<PipelineChoice> pipelines;
  std::vector<ParallelismChoice> parallelism;

  bool empty() const { return pipelines.empty() && parallelism.empty(); }
};

/// Per-thread status exposed to schedulers (for Q-ATH / Q-FTH / Q-LOC).
struct ThreadInfo {
  int id = -1;
  bool busy = false;
  QueryId running_query = kInvalidQuery;  ///< query currently executing
  QueryId last_query = kInvalidQuery;     ///< most recent query executed
};

}  // namespace lsched

#endif  // LSCHED_EXEC_EXEC_TYPES_H_

#ifndef LSCHED_EXEC_EXEC_TYPES_H_
#define LSCHED_EXEC_EXEC_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsched {

using QueryId = int64_t;
inline constexpr QueryId kInvalidQuery = -1;

/// The major events that trigger the scheduler (paper §5.2). The scheduler
/// is NOT invoked per work order — only on these events.
enum class SchedulingEventType : uint8_t {
  kQueryArrival = 0,      ///< a new query entered the system
  kOperatorCompleted,     ///< a scheduled operator finished all work orders
  kThreadIdle,            ///< a worker thread has no more assigned work
  kThreadAdded,           ///< the worker pool grew
  kThreadRemoved,         ///< the worker pool shrank
};

const char* SchedulingEventTypeName(SchedulingEventType t);

struct SchedulingEvent {
  SchedulingEventType type = SchedulingEventType::kQueryArrival;
  double time = 0.0;
  QueryId query = kInvalidQuery;  ///< for arrival / operator completion
  int op = -1;                    ///< for operator completion
  int thread = -1;                ///< for thread events
};

/// One unit of work: one (possibly fused pipeline) work order. In the
/// simulator a fused work order pushes one root block through the whole
/// scheduled pipeline; in the real engine it additionally carries the block
/// index to process.
struct WorkOrder {
  QueryId query = kInvalidQuery;
  std::vector<int> chain;  ///< pipeline member op ids, root first
  int index = 0;           ///< work-order sequence number within the pipeline
  double est_seconds = 0.0;
};

/// A scheduling decision: which pipelines to launch (execution root +
/// pipeline degree, paper §5.3.1–5.3.2) and per-query thread caps
/// (parallelism degree, §5.3.3). Queries without an entry keep their cap.
struct PipelineChoice {
  QueryId query = kInvalidQuery;
  int root_op = -1;
  int degree = 1;  ///< number of operators in the pipeline (>= 1)
};

struct ParallelismChoice {
  QueryId query = kInvalidQuery;
  int max_threads = 0;
};

struct SchedulingDecision {
  std::vector<PipelineChoice> pipelines;
  std::vector<ParallelismChoice> parallelism;

  bool empty() const { return pipelines.empty() && parallelism.empty(); }
};

/// Per-thread status exposed to schedulers (for Q-ATH / Q-FTH / Q-LOC).
struct ThreadInfo {
  int id = -1;
  bool busy = false;
  QueryId running_query = kInvalidQuery;  ///< query currently executing
  QueryId last_query = kInvalidQuery;     ///< most recent query executed
};

}  // namespace lsched

#endif  // LSCHED_EXEC_EXEC_TYPES_H_

#include "exec/real_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/trace.h"
#include "testing/faultpoint.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

RealEngine::RealEngine(const Catalog* catalog, RealEngineConfig config)
    : catalog_(catalog), config_(std::move(config)) {}

RealEngine::~RealEngine() {
  // A serving session abandoned without Drain() still tears down cleanly.
  if (serving_.load(std::memory_order_acquire)) Drain();
}

void RealEngine::WorkerLoop(int worker_id) {
  // Trace tid: workers are 1..N so the coordinator's auto-assigned id (0
  // on the first run) stays distinct in chrome://tracing.
  obs::SetThreadId(static_cast<uint32_t>(worker_id) + 1);
  Worker& w = *workers_[static_cast<size_t>(worker_id)];
  // Integer-ns run-clock read for the state accountant. The clock is
  // published before workers spawn and cleared only after the pool joins,
  // so it is non-null for the whole loop.
  const auto now_ns = [this] { return LatencyNs(run_clock_->Now()); };
  w.acct.Start(now_ns(), prof::WorkerState::kIdle);
  prof::WorkerState wait_state = prof::WorkerState::kIdle;
  while (true) {
    WorkerTask task;
    if (!worklist_->PopClaimWait(&task, std::chrono::milliseconds(2))) {
      // Timed out empty-handed: re-classify the parked state from the
      // engine hints. Only record a transition when the state actually
      // changed — Transition charges [last, now) to the outgoing state,
      // so the buckets telescope bit-exactly to wall time regardless of
      // how often the worker re-parks.
      const prof::WorkerState ws = CurrentWaitState();
      if (ws != wait_state) {
        w.acct.Transition(ws, now_ns());
        wait_state = ws;
      }
      continue;
    }
    if (task.shutdown) {
      w.acct.Transition(prof::WorkerState::kDraining,
                        LatencyNs(task.issued_at));
      w.acct.Stop(now_ns());
      return;
    }
    // Split the elapsed wait at the dispatch timestamp: [wait-start,
    // issued_at) stays in the wait state the worker was parked in,
    // [issued_at, here) — the coordinator→worker handoff — is
    // dispatch-overhead. Transition clamps, so a slightly stale issued_at
    // cannot break the telescoping sum.
    w.acct.Transition(prof::WorkerState::kDispatch, LatencyNs(task.issued_at));
    w.acct.Transition(prof::WorkerState::kExecuting, now_ns());
    Stopwatch sw;
    Status st;
    // Fault injection + deadline check run BEFORE kernel execution so a
    // failed attempt has no side effects and is safe to retry verbatim.
    const FaultAction fault = LSCHED_FAULT(
        "work_order_exec", task.query_index,
        run_clock_ != nullptr ? run_clock_->Now() : 0.0);
    if (fault &&
        (fault.type == FaultType::kDelay || fault.type == FaultType::kStall)) {
      // Injected worker stall: hold the thread (and its pipeline slot).
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.0, fault.param)));
    }
    bool expired = false;
    if (fault && fault.type == FaultType::kError) {
      st = Status::Internal("injected fault at work_order_exec");
    } else if (task.deadline_seconds > 0.0 && run_clock_ != nullptr &&
               run_clock_->Now() - task.issued_at > task.deadline_seconds) {
      st = Status::Internal("work-order deadline exceeded before execution");
      expired = true;
    } else {
      obs::ScopedSpan span("engine.work_order", "engine", "query",
                           task.query_index, "wo", task.wo_index);
      st = task.execution->ExecuteWorkOrder(task.chain, task.wo_index,
                                            &w.scratch);
    }
    Completion c;
    c.thread_id = task.slot_id;
    c.pipeline_index = task.pipeline_index;
    c.wo_index = task.wo_index;
    c.seconds = sw.ElapsedSeconds();
    c.expired = expired;
    c.status = std::move(st);
    // Completion-queue plumbing is dispatch-overhead; after the push the
    // worker parks in whichever wait state the engine hints at.
    w.acct.Transition(prof::WorkerState::kDispatch, now_ns());
    PushCompletion(std::move(c));
    wait_state = CurrentWaitState();
    w.acct.Transition(wait_state, now_ns());
  }
}

void RealEngine::PushCompletion(Completion c) {
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.push_back(std::move(c));
  }
  completion_cv_.notify_one();
}

void RealEngine::CancelQuery(QueryId query) {
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    external_cancels_.push_back(CancelRequest{query, 0.0});
  }
  // Wake the coordinator so the cancel is applied promptly even when no
  // completion is pending.
  completion_cv_.notify_one();
}

int RealEngine::InflightFor(int query_index) const {
  int inflight = 0;
  for (const ActivePipeline& p : pipelines_) {
    if (p.query_index == query_index) inflight += p.inflight;
  }
  return inflight;
}

void RealEngine::MaybeReleaseExecution(int query_index) {
  const QueryState* q = query_states_[static_cast<size_t>(query_index)].get();
  if (q == nullptr || !IsTerminalStatus(q->status()) ||
      q->status() == QueryStatus::kDone) {
    return;  // DONE queries release in ExtractSink
  }
  if (executions_[static_cast<size_t>(query_index)] == nullptr) return;
  if (InflightFor(query_index) > 0) return;  // workers may still touch it
  executions_[static_cast<size_t>(query_index)].reset();
}

void RealEngine::ExtractSink(int query_index) {
  const size_t idx = static_cast<size_t>(query_index);
  if (sink_rows_.size() < query_states_.size()) {
    sink_rows_.resize(query_states_.size(), 0);
    sink_checksums_.resize(query_states_.size(), 0.0);
  }
  QueryExecution* exec = executions_[idx].get();
  if (exec == nullptr) return;
  int64_t rows = 0;
  double checksum = 0.0;
  for (int sink : query_states_[idx]->plan().SinkNodes()) {
    const RowStore& store = exec->output(sink);
    rows += static_cast<int64_t>(store.num_rows());
    for (size_t r = 0; r < store.num_rows(); ++r) {
      for (int col = 0; col < store.num_cols(); ++col) {
        checksum += store.at(r, col);
      }
    }
  }
  sink_rows_[idx] = rows;
  sink_checksums_[idx] = checksum;
  // Every operator completed, so no attempt of this query is in flight:
  // reclaim the execution's blocks/hash tables now — a serving stream must
  // not accumulate per-query state for the lifetime of the daemon.
  if (InflightFor(query_index) == 0) executions_[idx].reset();
}

bool RealEngine::TerminateQuery(QueryId query, QueryStatus status,
                                double now) {
  if (query < 0 || static_cast<size_t>(query) >= query_states_.size()) {
    return false;
  }
  QueryState* q = query_states_[static_cast<size_t>(query)].get();
  if (q == nullptr || IsTerminalStatus(q->status())) return false;
  LSCHED_CHECK(q->TransitionTo(status));
  // Kill the query's pipelines: pending fused work is dropped, in-flight
  // attempts are discarded when they come back, retries are abandoned.
  int64_t dropped = 0;
  for (ActivePipeline& p : pipelines_) {
    if (p.query_index != static_cast<int>(query) || p.dead) continue;
    p.dead = true;
    p.retry_ready.clear();
    dropped += static_cast<int64_t>(p.total_fused - p.succeeded);
  }
  recorder_.OnQueryTerminated(q, now, dropped);
  if (ctx_.FindQuery(query) != nullptr) ctx_.RemoveQuery(query);
  ++terminal_queries_;
  // Reclaim the execution's blocks/state now if nothing is in flight;
  // otherwise the last draining completion releases it.
  MaybeReleaseExecution(static_cast<int>(query));
  if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*q, now);
  return true;
}

void RealEngine::ApplyDecision(const SchedulingDecision& decision,
                               double now) {
  for (const ParallelismChoice& pc : decision.parallelism) {
    if (QueryState* q = ctx_.FindQuery(pc.query)) {
      q->set_max_threads(std::max(0, pc.max_threads));
    }
  }
  for (const PipelineChoice& choice : decision.pipelines) {
    QueryState* q = ctx_.FindQuery(choice.query);
    if (q == nullptr) continue;
    // Query ids index the engine's query table directly.
    const int query_index = static_cast<int>(q->id());
    if (choice.root_op < 0 ||
        choice.root_op >= static_cast<int>(q->plan().num_nodes())) {
      continue;
    }
    if (!q->IsOpSchedulable(choice.root_op)) continue;
    // RealEngine restriction: every producer of the root must be complete
    // (no cross-thread streaming into a standalone root).
    bool producers_done = true;
    for (int e : q->plan().node(choice.root_op).in_edges) {
      if (!q->op_completed(q->plan().edge(e).producer)) {
        producers_done = false;
        break;
      }
    }
    if (!producers_done) continue;

    std::vector<int> valid = q->ValidPipelineFrom(choice.root_op);
    const int degree =
        std::clamp(choice.degree, 1, static_cast<int>(valid.size()));
    valid.resize(static_cast<size_t>(degree));

    ActivePipeline p;
    p.query_index = query_index;
    p.chain = valid;
    p.total_fused = executions_[static_cast<size_t>(query_index)]
                        ->NumWorkOrders(valid[0]);
    p.created_at = now;
    p.decision_id = current_decision_id_;
    for (int op : valid) q->set_op_scheduled(op, true);
    // Scheduling flags entered the query's feature inputs: invalidate
    // cached encodings.
    ctx_.MarkQueryDirty(q->id());
    recorder_.OnPipelineLaunched(current_decision_id_, q->id(), valid[0],
                                 degree, p.total_fused, now);
    pipelines_.push_back(std::move(p));
  }
}

int RealEngine::AssignThreads(double now) {
  int dispatched = 0;
  while (true) {
    int pipeline_index = -1;
    for (size_t i = 0; i < pipelines_.size(); ++i) {
      ActivePipeline& p = pipelines_[i];
      if (p.dead) continue;
      if (p.retry_ready.empty() && p.next_wo >= p.total_fused) continue;
      if (p.not_before > now) continue;  // retry backoff pending
      QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();
      const int cap =
          q->max_threads() > 0 ? q->max_threads() : config_.num_threads;
      if (q->assigned_threads() >= cap) continue;
      pipeline_index = static_cast<int>(i);
      break;
    }
    if (pipeline_index < 0) {
      // Nothing dispatchable. If live queries remain, their work is
      // blocked (dependencies, retry backoff, parallelism caps) — free
      // workers should account the coming wait as stalled, not idle.
      stall_hint_.store(!ctx_.queries().empty(), std::memory_order_relaxed);
      return dispatched;
    }
    ActivePipeline& p = pipelines_[static_cast<size_t>(pipeline_index)];
    QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();

    // Reserve a free logical slot, preferring locality. The slot keeps all
    // occupancy/locality bookkeeping identical to the per-worker-mailbox
    // era; which physical thread claims the task is irrelevant to it.
    int slot_id = -1;
    for (const ThreadInfo& t : ctx_.threads()) {
      if (!t.busy && t.last_query == q->id()) {
        slot_id = t.id;
        break;
      }
    }
    if (slot_id < 0) {
      for (const ThreadInfo& t : ctx_.threads()) {
        if (!t.busy) {
          slot_id = t.id;
          break;
        }
      }
    }
    if (slot_id < 0) {
      // Dispatchable work exists but every worker is busy: the next
      // worker to free up has work waiting, so a wait here is a stall.
      stall_hint_.store(true, std::memory_order_relaxed);
      return dispatched;
    }

    WorkerTask task;
    task.query_index = p.query_index;
    task.pipeline_index = pipeline_index;
    task.slot_id = slot_id;
    task.execution = executions_[static_cast<size_t>(p.query_index)].get();
    task.chain = p.chain;
    // Retries first (FIFO), then the next fresh work-order index.
    const bool is_retry = !p.retry_ready.empty();
    if (is_retry) {
      task.wo_index = p.retry_ready.front();
      p.retry_ready.erase(p.retry_ready.begin());
    } else {
      task.wo_index = p.next_wo++;
    }
    task.issued_at = now;
    task.deadline_seconds = config_.work_order_deadline_seconds;
    ++p.dispatched;
    ++p.inflight;
    ctx_.SetThreadBusy(slot_id, q->id());
    q->set_assigned_threads(q->assigned_threads() + 1);
    const int inflight = ctx_.total_threads() - ctx_.num_free_threads();
    recorder_.OnWorkOrderDispatched(q->id(), is_retry, inflight,
                                    now - p.created_at, now);
    worklist_->Push(std::move(task));
    ++dispatched;
  }
}

void RealEngine::InvokeScheduler(const SchedulingEvent& event,
                                 Scheduler* scheduler, double now) {
  // A query-cancelled event is a lifecycle notification the policy must
  // always see, even when no decision is currently possible (pool
  // saturated or nothing schedulable).
  ctx_.set_now(now);
  const bool lifecycle = event.type == SchedulingEventType::kQueryCancelled;
  for (int round = 0; round < config_.max_rounds_per_event; ++round) {
    const bool can_schedule =
        ctx_.num_free_threads() > 0 && ctx_.AnySchedulableOp();
    if (!can_schedule && !(lifecycle && round == 0)) return;
    Stopwatch sw;
    SchedulingDecision decision = scheduler->Schedule(event, ctx_);
    // Serving layer post-processing (priority classes, weighted fairness)
    // sits between the policy and the engine; ApplyDecision re-validates
    // every choice, so injected launches can never corrupt run state.
    if (config_.hooks != nullptr) {
      config_.hooks->FilterDecision(&decision, ctx_);
    }
    current_decision_id_ = recorder_.OnSchedulerInvocation(
        event, ctx_, decision, sw.ElapsedSeconds());
    if (decision.empty()) return;
    const size_t before = pipelines_.size();
    ApplyDecision(decision, now);
    AssignThreads(now);
    if (pipelines_.size() == before) return;
  }
}

void RealEngine::ForceFallback(double now) {
  for (QueryState* q : ctx_.queries()) {
    for (int op : q->SchedulableOps()) {
      bool producers_done = true;
      for (int e : q->plan().node(op).in_edges) {
        if (!q->op_completed(q->plan().edge(e).producer)) {
          producers_done = false;
          break;
        }
      }
      if (!producers_done) continue;
      SchedulingDecision d;
      d.pipelines.push_back(PipelineChoice{q->id(), op, 1});
      current_decision_id_ = recorder_.OnFallback(now, ctx_, q->id());
      ApplyDecision(d, now);
      AssignThreads(now);
      return;
    }
  }
}

void RealEngine::SetupRun(Scheduler* scheduler, size_t num_queries) {
  query_states_.clear();
  executions_.clear();
  pipelines_.clear();
  sink_rows_.assign(num_queries, 0);
  sink_checksums_.assign(num_queries, 0.0);
  {
    // CancelQuery/Submit may already be racing with run startup.
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.clear();
    external_cancels_.clear();
    pending_submissions_.clear();
  }
  current_decision_id_ = -1;
  terminal_queries_ = 0;
  last_flush_terminals_ = 0;
  ctx_.Reset();
  recorder_.Begin("real", scheduler, /*virtual_time=*/false, num_queries);
  scheduler->Reset();
  query_states_.resize(num_queries);
  executions_.resize(num_queries);
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = EpisodeResult{};
  }
}

int RealEngine::PeakPoolSize() const {
  // Events are applied in time order; the physical pool must cover the
  // high-water mark of the logical slot count they script.
  std::vector<ThreadPoolEvent> events = config_.thread_events;
  std::stable_sort(events.begin(), events.end(),
                   [](const ThreadPoolEvent& a, const ThreadPoolEvent& b) {
                     return a.time < b.time;
                   });
  int running = config_.num_threads;
  int peak = running;
  for (const ThreadPoolEvent& e : events) {
    running += e.delta;
    peak = std::max(peak, running);
  }
  return std::max(peak, config_.num_threads);
}

void RealEngine::SpawnWorkers() {
  workers_.clear();
  sorted_thread_events_ = config_.thread_events;
  std::stable_sort(sorted_thread_events_.begin(), sorted_thread_events_.end(),
                   [](const ThreadPoolEvent& a, const ThreadPoolEvent& b) {
                     return a.time < b.time;
                   });
  next_thread_event_ = 0;
  pending_slot_removals_ = 0;
  const int physical = PeakPoolSize();
  // The coordinator pushes at most one task per reserved slot plus one
  // shutdown task per worker at teardown, so 4x the peak pool can never
  // fill the lock-free ring.
  worklist_ = MakeWorklist<WorkerTask>(
      config_.worklist,
      std::max<size_t>(64, 4 * static_cast<size_t>(physical)));
  for (int i = 0; i < physical; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    workers_.push_back(std::move(w));
  }
  // Logical slots start at the configured size; thread_events grow/shrink
  // them mid-run. A physical worker beyond the current slot count simply
  // parks on the (empty-for-it) worklist.
  for (int i = 0; i < config_.num_threads; ++i) {
    ThreadInfo info;
    info.id = i;
    ctx_.AddThread(info);
  }
  next_slot_id_ = config_.num_threads;
  stall_hint_.store(false, std::memory_order_relaxed);
  pool_draining_.store(false, std::memory_order_relaxed);
  for (int i = 0; i < physical; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
  std::vector<const prof::WorkerAccount*> accounts;
  accounts.reserve(workers_.size());
  for (const auto& w : workers_) accounts.push_back(&w->acct);
  profiler_handle_ =
      prof::SamplingProfiler::Global().RegisterWorkers("real",
                                                       std::move(accounts));
}

void RealEngine::ApplyDueThreadEvents(double now, Scheduler* scheduler) {
  while (next_thread_event_ < sorted_thread_events_.size() &&
         sorted_thread_events_[next_thread_event_].time <= now) {
    const ThreadPoolEvent& change =
        sorted_thread_events_[next_thread_event_];
    ++next_thread_event_;
    if (change.delta == 0) continue;
    ctx_.set_now(now);
    SchedulingEvent se;
    se.time = now;
    if (change.delta > 0) {
      for (int k = 0; k < change.delta; ++k) {
        ThreadInfo info;
        info.id = next_slot_id_++;
        ctx_.AddThread(info);
      }
      se.type = SchedulingEventType::kThreadAdded;
    } else {
      // Retire idle slots immediately; busy slots retire as their current
      // work order completes (ProcessCompletion) — SimEngine's semantics.
      int to_remove = -change.delta;
      std::vector<int> idle_slots;
      for (const ThreadInfo& t : ctx_.threads()) {
        if (!t.busy) idle_slots.push_back(t.id);
      }
      for (int slot : idle_slots) {
        if (to_remove == 0) break;
        ctx_.RetireThread(slot);
        --to_remove;
      }
      pending_slot_removals_ += to_remove;
      se.type = SchedulingEventType::kThreadRemoved;
    }
    InvokeScheduler(se, scheduler, now);
    AssignThreads(now);
  }
}

void RealEngine::AdmitArrival(QueryId qid, QueryPlan plan,
                              const QueryTag& tag, double now,
                              Scheduler* scheduler) {
  const size_t idx = static_cast<size_t>(qid);
  query_states_[idx] =
      std::make_unique<QueryState>(qid, std::move(plan), now);
  QueryState* arrived = query_states_[idx].get();
  arrived->set_tag(tag);
  recorder_.TrackQuery(qid);
  recorder_.OnQueryArrival(*arrived, now);
  // Admission fault point: a kError here rejects the query (terminal
  // FAILED) before any execution state is allocated.
  const FaultAction admit = LSCHED_FAULT("query_admit", qid, now);
  if (admit && admit.type == FaultType::kError) {
    LSCHED_CHECK(arrived->TransitionTo(QueryStatus::kFailed));
    recorder_.OnQueryTerminated(arrived, now, 0);
    ++terminal_queries_;
    if (config_.hooks != nullptr) {
      config_.hooks->OnEngineRefused(*arrived, now);
      config_.hooks->OnQueryTerminal(*arrived, now);
    }
    return;
  }
  const AdmissionVerdict verdict = config_.hooks != nullptr
                                       ? config_.hooks->OnAdmission(
                                             *arrived, ctx_, now)
                                       : AdmissionVerdict{};
  if (!verdict.admit) {
    // Load shed: terminal before the scheduler ever sees the query.
    recorder_.OnAdmissionVerdict(qid, now, /*admitted=*/false, kInvalidQuery);
    LSCHED_CHECK(arrived->TransitionTo(QueryStatus::kShed));
    recorder_.OnQueryTerminated(arrived, now, 0);
    ++terminal_queries_;
    if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*arrived, now);
    return;
  }
  // A higher-priority arrival may displace a pending lower-priority query.
  // Only ADMITTED (never-launched) queries are eligible — a stale/illegal
  // victim id is ignored rather than fatal.
  QueryId displaced = kInvalidQuery;
  if (verdict.displace != kInvalidQuery) {
    const size_t vi = static_cast<size_t>(verdict.displace);
    if (vi < query_states_.size() && query_states_[vi] != nullptr &&
        query_states_[vi]->status() == QueryStatus::kAdmitted) {
      displaced = verdict.displace;
    }
  }
  recorder_.OnAdmissionVerdict(qid, now, /*admitted=*/true, displaced);
  if (displaced != kInvalidQuery) {
    recorder_.OnQueryDisplaced(displaced, qid, now);
    if (TerminateQuery(displaced, QueryStatus::kShed, now)) {
      SchedulingEvent shed_ev;
      shed_ev.type = SchedulingEventType::kQueryCancelled;
      shed_ev.time = now;
      shed_ev.query = displaced;
      InvokeScheduler(shed_ev, scheduler, now);
    }
  }
  executions_[idx] = std::make_unique<QueryExecution>(
      catalog_, &query_states_[idx]->plan(), config_.chunk_rows);
  ctx_.set_now(now);
  ctx_.AddQuery(arrived);
  SchedulingEvent se;
  se.type = SchedulingEventType::kQueryArrival;
  se.time = now;
  se.query = qid;
  InvokeScheduler(se, scheduler, now);
  AssignThreads(now);
}

bool RealEngine::CancelLive(QueryId qid, double t, Scheduler* scheduler) {
  if (!TerminateQuery(qid, QueryStatus::kCancelled, t)) return false;
  // The cancel freed this query's claim on threads/memory: tell the
  // scheduler so it can re-plan, then backfill the pool.
  SchedulingEvent se;
  se.type = SchedulingEventType::kQueryCancelled;
  se.time = t;
  se.query = qid;
  InvokeScheduler(se, scheduler, t);
  AssignThreads(t);
  return true;
}

void RealEngine::ProcessCompletion(const Completion& c, double now,
                                   Scheduler* scheduler) {
  ActivePipeline& p = pipelines_[static_cast<size_t>(c.pipeline_index)];
  QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();
  ctx_.set_now(now);
  // Free the worker first — identical bookkeeping for every outcome.
  ctx_.SetThreadIdle(c.thread_id, q->id());
  --p.inflight;
  q->set_assigned_threads(q->assigned_threads() - 1);
  if (pending_slot_removals_ > 0) {
    // A pool shrink found this slot busy; retire it now that its in-flight
    // work order has drained (mirrors SimEngine's deferred removal). The
    // retired slot disappears from ctx_, so the kThreadIdle branch below
    // naturally skips it.
    ctx_.RetireThread(c.thread_id);
    --pending_slot_removals_;
  }

  std::vector<int> completed_ops;
  bool emit_cancel_event = false;
  if (p.dead) {
    // The query reached a terminal state while this attempt was in
    // flight: throw the result away and free the execution once the last
    // straggler drains.
    recorder_.OnWorkOrderDiscarded();
    MaybeReleaseExecution(p.query_index);
  } else if (!c.status.ok()) {
    recorder_.OnWorkOrderFailed(q->id(), now);
    if (c.expired) recorder_.OnWorkOrderExpired();
    const int attempt = ++p.attempts[c.wo_index];
    if (attempt > config_.retry.max_retries) {
      // Retry budget exhausted: the whole query fails. The worker pool
      // stays healthy — only this query's work is torn down.
      LSCHED_LOG(Warning) << "query " << p.query_index << " work order "
                          << c.wo_index << " failed after " << attempt
                          << " attempts: " << c.status.ToString();
      TerminateQuery(q->id(), QueryStatus::kFailed, now);
      emit_cancel_event = true;
    } else {
      recorder_.OnWorkOrderRetried(q->id(), now);
      p.retry_ready.push_back(c.wo_index);
      const double backoff = config_.retry.BackoffFor(attempt);
      if (backoff > 0.0) {
        p.not_before = std::max(p.not_before, now + backoff);
      }
    }
  } else {
    q->AddAttainedService(c.seconds);
    recorder_.OnWorkOrderCompleted(q->id(), p.decision_id, c.seconds, now);
    ++p.succeeded;
    if (config_.work_order_deadline_seconds > 0.0 &&
        c.seconds > config_.work_order_deadline_seconds) {
      // Post-execution overrun: the kernel's side effects are already
      // applied, so a retry would double-apply them. Accept the result
      // and count the overrun.
      recorder_.OnWorkOrderExpired();
    }

    const double fused_total = static_cast<double>(p.total_fused);
    for (size_t s = 0; s < p.chain.size(); ++s) {
      const int op = p.chain[s];
      const double amount =
          static_cast<double>(q->plan().node(op).num_work_orders) /
          fused_total;
      const double mem = static_cast<double>(
          executions_[static_cast<size_t>(p.query_index)]->StateBytes(op));
      if (q->AdvanceOperator(
              op, amount, c.seconds / static_cast<double>(p.chain.size()),
              mem / fused_total)) {
        const Status fin = executions_[static_cast<size_t>(p.query_index)]
                               ->FinalizeOperator(op);
        LSCHED_CHECK(fin.ok()) << fin.ToString();
        completed_ops.push_back(op);
      }
    }
    // Operator progress changed (O-WO/O-DUR/O-MEM, possibly completion
    // flags): invalidate cached encodings for this query.
    ctx_.MarkQueryDirty(q->id());

    if (q->completed() && q->completion_time() < 0.0) {
      recorder_.OnQueryCompleted(q, now);
      ++terminal_queries_;
      ctx_.RemoveQuery(q->id());
      ExtractSink(p.query_index);
      if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*q, now);
    }
  }

  AssignThreads(now);
  const ThreadInfo* winfo = ctx_.thread(c.thread_id);
  if (emit_cancel_event) {
    SchedulingEvent se;
    se.type = SchedulingEventType::kQueryCancelled;
    se.time = now;
    se.query = q->id();
    InvokeScheduler(se, scheduler, now);
    AssignThreads(now);
  } else if (!completed_ops.empty()) {
    SchedulingEvent se;
    se.type = SchedulingEventType::kOperatorCompleted;
    se.time = now;
    se.query = q->id();
    se.op = completed_ops.front();
    InvokeScheduler(se, scheduler, now);
    AssignThreads(now);
  } else if (winfo != nullptr && !winfo->busy) {
    SchedulingEvent se;
    se.type = SchedulingEventType::kThreadIdle;
    se.time = now;
    se.thread = c.thread_id;
    InvokeScheduler(se, scheduler, now);
    AssignThreads(now);
  }
}

void RealEngine::DrainOutstanding() {
  // From here to pool teardown, waiting workers are draining.
  pool_draining_.store(true, std::memory_order_relaxed);
  // Drain attempts still in flight for terminal queries so work-order
  // conservation closes out, then release any zombie executions.
  int outstanding = 0;
  for (const ActivePipeline& p : pipelines_) outstanding += p.inflight;
  while (outstanding > 0) {
    Completion c;
    {
      std::unique_lock<std::mutex> lock(completion_mu_);
      completion_cv_.wait(lock, [&] { return !completions_.empty(); });
      c = std::move(completions_.front());
      completions_.pop_front();
    }
    ActivePipeline& p = pipelines_[static_cast<size_t>(c.pipeline_index)];
    QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();
    ctx_.SetThreadIdle(c.thread_id, q->id());
    --p.inflight;
    q->set_assigned_threads(q->assigned_threads() - 1);
    recorder_.OnWorkOrderDiscarded();
    MaybeReleaseExecution(p.query_index);
    --outstanding;
  }

  // Invariant: every terminal non-DONE query has released its execution
  // state (no leaked blocks/hash tables after cancellation, failure, or
  // shedding; DONE queries released theirs in ExtractSink).
  for (size_t i = 0; i < query_states_.size(); ++i) {
    const QueryState* q = query_states_[i].get();
    if (q != nullptr && q->status() != QueryStatus::kDone) {
      LSCHED_CHECK(executions_[i] == nullptr)
          << "terminal query " << i << " ("
          << QueryStatusName(q->status())
          << ") leaked its execution state";
    }
  }
}

void RealEngine::ShutdownPool() {
  pool_draining_.store(true, std::memory_order_relaxed);
  // The worklist is empty by now (DrainOutstanding waited out every pushed
  // task), so one shutdown task per worker stops the whole pool: each
  // worker claims exactly one and exits.
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerTask t;
    t.shutdown = true;
    // Stamp the shutdown like a dispatch so the worker's accountant can
    // split its final wait from the teardown window.
    t.issued_at = run_clock_ != nullptr ? run_clock_->Now() : 0.0;
    worklist_->Push(std::move(t));
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  if (profiler_handle_ != 0) {
    prof::SamplingProfiler::Global().UnregisterWorkers(profiler_handle_);
    profiler_handle_ = 0;
  }
}

std::vector<prof::WorkerStateBuckets> RealEngine::CollectWorkerStates() const {
  std::vector<prof::WorkerStateBuckets> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) out.push_back(w->acct.Read());
  return out;
}

void RealEngine::MaybeFlushWindow(double now) {
  if (config_.flush_window_queries <= 0) return;
  if (terminal_queries_ - last_flush_terminals_ <
      config_.flush_window_queries) {
    return;
  }
  last_flush_terminals_ = terminal_queries_;
  recorder_.OnWorkerStates(CollectWorkerStates());
  recorder_.FlushWindow();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = recorder_.SnapshotResult(now);
}

RealRunResult RealEngine::BuildResult() {
  RealRunResult out;
  out.episode = recorder_.Take();
  sink_rows_.resize(query_states_.size(), 0);
  sink_checksums_.resize(query_states_.size(), 0.0);
  out.sink_row_counts = std::move(sink_rows_);
  out.sink_checksums = std::move(sink_checksums_);
  sink_rows_.clear();
  sink_checksums_.clear();
  return out;
}

RealRunResult RealEngine::Run(const std::vector<RealQuerySubmission>& workload,
                              Scheduler* scheduler) {
  LSCHED_CHECK(!serving_.load(std::memory_order_acquire))
      << "Run() is unavailable while a serving session is active";
  SetupRun(scheduler, workload.size());

  // The run clock must exist before workers spawn: they read it (read-only)
  // for work-order deadline checks.
  WallClock clock;
  run_clock_ = &clock;
  SpawnWorkers();

  // Scripted cancels, applied in time order ahead of arrivals so a cancel
  // at t <= arrival deterministically cancels the query on admission.
  std::vector<CancelRequest> scripted_cancels = config_.cancels;
  std::stable_sort(scripted_cancels.begin(), scripted_cancels.end(),
                   [](const CancelRequest& a, const CancelRequest& b) {
                     return a.time < b.time;
                   });
  size_t next_cancel = 0;

  // Applies a cancel request at time `t`. Un-arrived queries are
  // admitted-and-cancelled so their terminal status is deterministic
  // regardless of arrival/cancel interleaving.
  const auto handle_cancel = [&](QueryId qid, double t) {
    if (qid < 0 || static_cast<size_t>(qid) >= workload.size()) return;
    const size_t idx = static_cast<size_t>(qid);
    if (query_states_[idx] == nullptr) {
      query_states_[idx] =
          std::make_unique<QueryState>(qid, workload[idx].plan, t);
      QueryState* q = query_states_[idx].get();
      q->set_tag(workload[idx].tag);
      recorder_.OnQueryArrival(*q, t);
      LSCHED_CHECK(q->TransitionTo(QueryStatus::kCancelled));
      recorder_.OnQueryTerminated(q, t, 0);
      ++terminal_queries_;
      if (config_.hooks != nullptr) config_.hooks->OnQueryTerminal(*q, t);
    } else {
      CancelLive(qid, t, scheduler);
    }
  };

  size_t next_arrival = 0;
  std::vector<size_t> arrival_order(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) arrival_order[i] = i;
  std::sort(arrival_order.begin(), arrival_order.end(),
            [&](size_t a, size_t b) {
              return workload[a].arrival_offset_seconds <
                     workload[b].arrival_offset_seconds;
            });

  while (terminal_queries_ < static_cast<int>(workload.size())) {
    const double now = clock.Now();
    ApplyDueThreadEvents(now, scheduler);

    // Apply due cancels BEFORE releasing arrivals: a cancel scripted at or
    // before a query's arrival wins deterministically.
    while (next_cancel < scripted_cancels.size() &&
           scripted_cancels[next_cancel].time <= now) {
      ctx_.set_now(now);
      handle_cancel(scripted_cancels[next_cancel].query, now);
      ++next_cancel;
    }
    {
      std::vector<CancelRequest> external;
      {
        std::lock_guard<std::mutex> lock(completion_mu_);
        external.swap(external_cancels_);
      }
      for (const CancelRequest& cr : external) {
        ctx_.set_now(now);
        handle_cancel(cr.query, now);
      }
    }

    // Release due arrivals.
    while (next_arrival < arrival_order.size() &&
           workload[arrival_order[next_arrival]].arrival_offset_seconds <=
               now) {
      const size_t idx = arrival_order[next_arrival];
      ++next_arrival;
      // Already admitted-and-cancelled by an earlier cancel request.
      if (query_states_[idx] != nullptr) continue;
      ctx_.set_now(now);
      AdmitArrival(static_cast<QueryId>(idx), workload[idx].plan,
                   workload[idx].tag, now, scheduler);
    }

    // Deadlock guard: nothing running, nothing pending, queries remain.
    const bool any_busy = ctx_.num_free_threads() != ctx_.total_threads();
    bool any_pending = false;
    for (const ActivePipeline& p : pipelines_) {
      any_pending |= !p.dead && (p.next_wo < p.total_fused ||
                                 !p.retry_ready.empty());
    }
    if (!any_busy && !any_pending && next_arrival >= arrival_order.size()) {
      bool all_terminal = true;
      for (const auto& q : query_states_) {
        if (q == nullptr || !IsTerminalStatus(q->status())) {
          all_terminal = false;
        }
      }
      if (all_terminal) break;
      if (!ctx_.queries().empty()) ForceFallback(now);
    }

    // Wait for a completion (with a timeout so arrivals, cancels, and
    // elapsed retry backoffs are serviced).
    Completion c;
    {
      std::unique_lock<std::mutex> lock(completion_mu_);
      if (!completion_cv_.wait_for(lock, std::chrono::milliseconds(2),
                                   [&] {
                                     return !completions_.empty() ||
                                            !external_cancels_.empty();
                                   })) {
        AssignThreads(clock.Now());  // a retry backoff may have elapsed
        continue;
      }
      if (completions_.empty()) continue;  // woken for an external cancel
      c = std::move(completions_.front());
      completions_.pop_front();
    }
    ProcessCompletion(c, clock.Now(), scheduler);
    MaybeFlushWindow(clock.Now());
  }

  DrainOutstanding();
  ShutdownPool();
  run_clock_ = nullptr;

  // Pool joined: the accountants are final — hand the exact buckets over
  // before the episode closes.
  recorder_.OnWorkerStates(CollectWorkerStates());
  recorder_.Finalize(clock.Now());
  return BuildResult();
}

void RealEngine::StartServing(Scheduler* scheduler) {
  LSCHED_CHECK(!serving_.load(std::memory_order_acquire))
      << "StartServing while a serving session is already active";
  SetupRun(scheduler, 0);
  serving_scheduler_ = scheduler;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    next_query_id_ = 0;
  }
  serving_clock_.emplace();
  run_clock_ = &*serving_clock_;
  SpawnWorkers();
  draining_.store(false, std::memory_order_release);
  serving_.store(true, std::memory_order_release);
  coordinator_ = std::thread([this] { ServeLoop(); });
}

QueryId RealEngine::Submit(QueryPlan plan, QueryTag tag) {
  QueryId id = kInvalidQuery;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    if (!serving_.load(std::memory_order_acquire) ||
        draining_.load(std::memory_order_acquire)) {
      return kInvalidQuery;
    }
    id = next_query_id_++;
    pending_submissions_.push_back(
        PendingSubmission{id, std::move(plan), tag});
  }
  completion_cv_.notify_one();
  return id;
}

EpisodeResult RealEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

RealRunResult RealEngine::Drain() {
  LSCHED_CHECK(serving_.load(std::memory_order_acquire))
      << "Drain without an active serving session";
  {
    // Under completion_mu_ so the drain flag orders against Submit(): once
    // the coordinator observes it, no further submissions can exist.
    std::lock_guard<std::mutex> lock(completion_mu_);
    draining_.store(true, std::memory_order_release);
  }
  completion_cv_.notify_one();
  if (coordinator_.joinable()) coordinator_.join();
  serving_.store(false, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  serving_clock_.reset();
  serving_scheduler_ = nullptr;
  return std::move(serving_result_);
}

void RealEngine::ServeLoop() {
  Scheduler* scheduler = serving_scheduler_;
  const Clock& clock = *serving_clock_;
  while (true) {
    const double now = clock.Now();
    ApplyDueThreadEvents(now, scheduler);
    // Read the drain flag BEFORE swapping the ingress queues: Submit()
    // refuses once draining_ is set (under completion_mu_), so a true read
    // here guarantees this iteration's swap sees every submission ever
    // accepted — none can be lost or double-counted.
    const bool drain_now = draining_.load(std::memory_order_acquire);
    std::vector<PendingSubmission> subs;
    std::vector<CancelRequest> cancels;
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      subs.swap(pending_submissions_);
      cancels.swap(external_cancels_);
    }
    ctx_.set_now(now);
    // Intake before cancels: a cancel's id was returned by an earlier
    // Submit, so its submission is either in this batch or already
    // admitted — processing submissions first makes every cancel
    // resolvable against an existing query.
    for (PendingSubmission& s : subs) {
      const size_t n = static_cast<size_t>(s.id) + 1;
      if (query_states_.size() < n) {
        query_states_.resize(n);
        executions_.resize(n);
      }
      if (drain_now) {
        // Queued-but-unadmitted at drain time: shed, never silently
        // dropped — every Submit-returned id reaches a terminal status.
        query_states_[static_cast<size_t>(s.id)] =
            std::make_unique<QueryState>(s.id, std::move(s.plan), now);
        QueryState* q = query_states_[static_cast<size_t>(s.id)].get();
        q->set_tag(s.tag);
        recorder_.TrackQuery(s.id);
        recorder_.OnQueryArrival(*q, now);
        LSCHED_CHECK(q->TransitionTo(QueryStatus::kShed));
        recorder_.OnQueryTerminated(q, now, 0);
        ++terminal_queries_;
        if (config_.hooks != nullptr) {
          config_.hooks->OnEngineRefused(*q, now);
          config_.hooks->OnQueryTerminal(*q, now);
        }
      } else {
        AdmitArrival(s.id, std::move(s.plan), s.tag, now, scheduler);
      }
    }
    for (const CancelRequest& cr : cancels) {
      if (cr.query >= 0 &&
          static_cast<size_t>(cr.query) < query_states_.size() &&
          query_states_[static_cast<size_t>(cr.query)] != nullptr) {
        CancelLive(cr.query, now, scheduler);
      }
    }

    // Drain completes once every submitted query is terminal
    // (drain-don't-preempt: running queries were allowed to finish).
    if (drain_now &&
        terminal_queries_ == static_cast<int>(query_states_.size())) {
      break;
    }

    // Deadlock guard: live queries but nothing running or pending.
    const bool any_busy = ctx_.num_free_threads() != ctx_.total_threads();
    bool any_pending = false;
    for (const ActivePipeline& p : pipelines_) {
      any_pending |= !p.dead && (p.next_wo < p.total_fused ||
                                 !p.retry_ready.empty());
    }
    if (!any_busy && !any_pending && !ctx_.queries().empty()) {
      ForceFallback(now);
    }

    // Wait for a completion (with a timeout so ingress, cancels, drain,
    // and elapsed retry backoffs are serviced).
    Completion c;
    {
      std::unique_lock<std::mutex> lock(completion_mu_);
      if (!completion_cv_.wait_for(lock, std::chrono::milliseconds(2),
                                   [&] {
                                     return !completions_.empty() ||
                                            !external_cancels_.empty() ||
                                            !pending_submissions_.empty();
                                   })) {
        AssignThreads(clock.Now());  // a retry backoff may have elapsed
        MaybeFlushWindow(clock.Now());
        continue;
      }
      if (completions_.empty()) continue;  // woken for ingress or a cancel
      c = std::move(completions_.front());
      completions_.pop_front();
    }
    ProcessCompletion(c, clock.Now(), scheduler);
    MaybeFlushWindow(clock.Now());
  }

  DrainOutstanding();
  ShutdownPool();
  run_clock_ = nullptr;
  recorder_.OnWorkerStates(CollectWorkerStates());
  recorder_.Finalize(clock.Now());
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = recorder_.SnapshotResult(clock.Now());
  }
  serving_result_ = BuildResult();
}

}  // namespace lsched

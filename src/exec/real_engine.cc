#include "exec/real_engine.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

RealEngine::RealEngine(const Catalog* catalog, RealEngineConfig config)
    : catalog_(catalog), config_(std::move(config)) {}

void RealEngine::WorkerLoop(int worker_id) {
  // Trace tid: workers are 1..N so the coordinator's auto-assigned id (0
  // on the first run) stays distinct in chrome://tracing.
  obs::SetThreadId(static_cast<uint32_t>(worker_id) + 1);
  Worker& w = *workers_[static_cast<size_t>(worker_id)];
  while (true) {
    WorkerTask task;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] { return w.task.has_value(); });
      task = std::move(*w.task);
      w.task.reset();
    }
    if (task.shutdown) return;
    Stopwatch sw;
    Status st;
    {
      obs::ScopedSpan span("engine.work_order", "engine", "query",
                           task.query_index, "wo", task.wo_index);
      st = executions_[static_cast<size_t>(task.query_index)]
               ->ExecuteWorkOrder(task.chain, task.wo_index);
    }
    Completion c;
    c.thread_id = worker_id;
    c.pipeline_index = task.pipeline_index;
    c.wo_index = task.wo_index;
    c.seconds = sw.ElapsedSeconds();
    c.status = std::move(st);
    PushCompletion(std::move(c));
  }
}

void RealEngine::PushCompletion(Completion c) {
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    completions_.push_back(std::move(c));
  }
  completion_cv_.notify_one();
}

void RealEngine::ApplyDecision(const SchedulingDecision& decision,
                               double now) {
  for (const ParallelismChoice& pc : decision.parallelism) {
    if (QueryState* q = ctx_.FindQuery(pc.query)) {
      q->set_max_threads(std::max(0, pc.max_threads));
    }
  }
  for (const PipelineChoice& choice : decision.pipelines) {
    QueryState* q = ctx_.FindQuery(choice.query);
    if (q == nullptr) continue;
    // Query ids are assigned from the workload index at arrival.
    const int query_index = static_cast<int>(q->id());
    if (choice.root_op < 0 ||
        choice.root_op >= static_cast<int>(q->plan().num_nodes())) {
      continue;
    }
    if (!q->IsOpSchedulable(choice.root_op)) continue;
    // RealEngine restriction: every producer of the root must be complete
    // (no cross-thread streaming into a standalone root).
    bool producers_done = true;
    for (int e : q->plan().node(choice.root_op).in_edges) {
      if (!q->op_completed(q->plan().edge(e).producer)) {
        producers_done = false;
        break;
      }
    }
    if (!producers_done) continue;

    std::vector<int> valid = q->ValidPipelineFrom(choice.root_op);
    const int degree =
        std::clamp(choice.degree, 1, static_cast<int>(valid.size()));
    valid.resize(static_cast<size_t>(degree));

    ActivePipeline p;
    p.query_index = query_index;
    p.chain = valid;
    p.total_fused = executions_[static_cast<size_t>(query_index)]
                        ->NumWorkOrders(valid[0]);
    p.created_at = now;
    p.decision_id = current_decision_id_;
    for (int op : valid) q->set_op_scheduled(op, true);
    // Scheduling flags entered the query's feature inputs: invalidate
    // cached encodings.
    ctx_.MarkQueryDirty(q->id());
    recorder_.OnPipelineLaunched(current_decision_id_, q->id(), valid[0],
                                 degree, p.total_fused, now);
    pipelines_.push_back(std::move(p));
  }
}

int RealEngine::AssignThreads(double now) {
  int dispatched = 0;
  while (true) {
    int pipeline_index = -1;
    for (size_t i = 0; i < pipelines_.size(); ++i) {
      ActivePipeline& p = pipelines_[i];
      if (p.dispatched >= p.total_fused) continue;
      QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();
      const int cap =
          q->max_threads() > 0 ? q->max_threads() : config_.num_threads;
      if (q->assigned_threads() >= cap) continue;
      pipeline_index = static_cast<int>(i);
      break;
    }
    if (pipeline_index < 0) return dispatched;
    ActivePipeline& p = pipelines_[static_cast<size_t>(pipeline_index)];
    QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();

    // Find a free worker, preferring locality.
    int worker_id = -1;
    for (const ThreadInfo& t : ctx_.threads()) {
      if (!t.busy && t.last_query == q->id()) {
        worker_id = t.id;
        break;
      }
    }
    if (worker_id < 0) {
      for (const ThreadInfo& t : ctx_.threads()) {
        if (!t.busy) {
          worker_id = t.id;
          break;
        }
      }
    }
    if (worker_id < 0) return dispatched;

    Worker& w = *workers_[static_cast<size_t>(worker_id)];
    WorkerTask task;
    task.query_index = p.query_index;
    task.pipeline_index = pipeline_index;
    task.chain = p.chain;
    task.wo_index = p.dispatched;
    ++p.dispatched;
    ++p.inflight;
    ctx_.SetThreadBusy(worker_id, q->id());
    q->set_assigned_threads(q->assigned_threads() + 1);
    const int inflight = ctx_.total_threads() - ctx_.num_free_threads();
    recorder_.OnWorkOrderDispatched(inflight, now - p.created_at);
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.task = std::move(task);
    }
    w.cv.notify_one();
    ++dispatched;
  }
}

void RealEngine::InvokeScheduler(const SchedulingEvent& event,
                                 Scheduler* scheduler, double now) {
  ctx_.set_now(now);
  for (int round = 0; round < config_.max_rounds_per_event; ++round) {
    if (ctx_.num_free_threads() == 0) return;
    if (!ctx_.AnySchedulableOp()) return;
    Stopwatch sw;
    const SchedulingDecision decision = scheduler->Schedule(event, ctx_);
    current_decision_id_ = recorder_.OnSchedulerInvocation(
        event, ctx_, decision, sw.ElapsedSeconds());
    if (decision.empty()) return;
    const size_t before = pipelines_.size();
    ApplyDecision(decision, now);
    AssignThreads(now);
    if (pipelines_.size() == before) return;
  }
}

void RealEngine::ForceFallback(double now) {
  for (QueryState* q : ctx_.queries()) {
    for (int op : q->SchedulableOps()) {
      bool producers_done = true;
      for (int e : q->plan().node(op).in_edges) {
        if (!q->op_completed(q->plan().edge(e).producer)) {
          producers_done = false;
          break;
        }
      }
      if (!producers_done) continue;
      SchedulingDecision d;
      d.pipelines.push_back(PipelineChoice{q->id(), op, 1});
      current_decision_id_ = recorder_.OnFallback(now);
      ApplyDecision(d, now);
      AssignThreads(now);
      return;
    }
  }
}

RealRunResult RealEngine::Run(const std::vector<RealQuerySubmission>& workload,
                              Scheduler* scheduler) {
  query_states_.clear();
  executions_.clear();
  pipelines_.clear();
  completions_.clear();
  current_decision_id_ = -1;
  ctx_.Reset();
  recorder_.Begin("real", scheduler, /*virtual_time=*/false);
  scheduler->Reset();

  query_states_.resize(workload.size());
  executions_.resize(workload.size());

  workers_.clear();
  for (int i = 0; i < config_.num_threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->id = i;
    workers_.push_back(std::move(w));
    ThreadInfo info;
    info.id = i;
    ctx_.AddThread(info);
  }
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_[static_cast<size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }

  WallClock clock;
  size_t next_arrival = 0;
  std::vector<size_t> arrival_order(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) arrival_order[i] = i;
  std::sort(arrival_order.begin(), arrival_order.end(),
            [&](size_t a, size_t b) {
              return workload[a].arrival_offset_seconds <
                     workload[b].arrival_offset_seconds;
            });

  int completed_queries = 0;
  while (completed_queries < static_cast<int>(workload.size())) {
    const double now = clock.Now();

    // Release due arrivals.
    while (next_arrival < arrival_order.size() &&
           workload[arrival_order[next_arrival]].arrival_offset_seconds <=
               now) {
      const size_t idx = arrival_order[next_arrival];
      query_states_[idx] = std::make_unique<QueryState>(
          static_cast<QueryId>(idx), workload[idx].plan, now);
      executions_[idx] = std::make_unique<QueryExecution>(
          catalog_, &query_states_[idx]->plan(), config_.chunk_rows);
      ctx_.set_now(now);
      ctx_.AddQuery(query_states_[idx].get());
      ++next_arrival;
      SchedulingEvent se;
      se.type = SchedulingEventType::kQueryArrival;
      se.time = now;
      se.query = static_cast<QueryId>(idx);
      InvokeScheduler(se, scheduler, now);
      AssignThreads(now);
    }

    // Deadlock guard: nothing running, nothing pending, queries remain.
    const bool any_busy = ctx_.num_free_threads() != ctx_.total_threads();
    bool any_pending = false;
    for (const ActivePipeline& p : pipelines_) {
      any_pending |= p.dispatched < p.total_fused;
    }
    if (!any_busy && !any_pending && next_arrival >= arrival_order.size()) {
      bool all_done = true;
      for (const auto& q : query_states_) {
        if (q != nullptr && !q->completed()) all_done = false;
      }
      if (all_done) break;
      ForceFallback(now);
    }

    // Wait for a completion (with a timeout so arrivals are released).
    Completion c;
    {
      std::unique_lock<std::mutex> lock(completion_mu_);
      if (!completion_cv_.wait_for(lock, std::chrono::milliseconds(2),
                                   [&] { return !completions_.empty(); })) {
        continue;
      }
      c = std::move(completions_.front());
      completions_.pop_front();
    }
    const double done_now = clock.Now();
    LSCHED_CHECK(c.status.ok()) << c.status.ToString();

    ActivePipeline& p = pipelines_[static_cast<size_t>(c.pipeline_index)];
    QueryState* q = query_states_[static_cast<size_t>(p.query_index)].get();
    Worker& w = *workers_[static_cast<size_t>(c.thread_id)];
    ctx_.set_now(done_now);
    ctx_.SetThreadIdle(c.thread_id, q->id());
    q->AddAttainedService(c.seconds);
    recorder_.OnWorkOrderCompleted(p.decision_id, c.seconds);
    --p.inflight;
    q->set_assigned_threads(q->assigned_threads() - 1);

    std::vector<int> completed_ops;
    const double fused_total = static_cast<double>(p.total_fused);
    for (size_t s = 0; s < p.chain.size(); ++s) {
      const int op = p.chain[s];
      const double amount =
          static_cast<double>(q->plan().node(op).num_work_orders) /
          fused_total;
      const double mem = static_cast<double>(
          executions_[static_cast<size_t>(p.query_index)]->StateBytes(op));
      if (q->AdvanceOperator(
              op, amount, c.seconds / static_cast<double>(p.chain.size()),
              mem / fused_total)) {
        const Status fin = executions_[static_cast<size_t>(p.query_index)]
                               ->FinalizeOperator(op);
        LSCHED_CHECK(fin.ok()) << fin.ToString();
        completed_ops.push_back(op);
      }
    }
    // Operator progress changed (O-WO/O-DUR/O-MEM, possibly completion
    // flags): invalidate cached encodings for this query.
    ctx_.MarkQueryDirty(q->id());

    if (q->completed() && q->completion_time() < 0.0) {
      recorder_.OnQueryCompleted(q, done_now);
      ++completed_queries;
      ctx_.RemoveQuery(q->id());
    }

    AssignThreads(done_now);
    const ThreadInfo* winfo = ctx_.thread(w.id);
    if (!completed_ops.empty()) {
      SchedulingEvent se;
      se.type = SchedulingEventType::kOperatorCompleted;
      se.time = done_now;
      se.query = q->id();
      se.op = completed_ops.front();
      InvokeScheduler(se, scheduler, done_now);
      AssignThreads(done_now);
    } else if (winfo != nullptr && !winfo->busy) {
      SchedulingEvent se;
      se.type = SchedulingEventType::kThreadIdle;
      se.time = done_now;
      se.thread = w.id;
      InvokeScheduler(se, scheduler, done_now);
      AssignThreads(done_now);
    }
  }

  // Shut the pool down.
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      WorkerTask t;
      t.shutdown = true;
      w->task = t;
    }
    w->cv.notify_one();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }

  recorder_.Finalize(clock.Now());

  RealRunResult out;
  out.episode = recorder_.Take();
  for (size_t i = 0; i < workload.size(); ++i) {
    int64_t rows = 0;
    double checksum = 0.0;
    if (executions_[i] != nullptr) {
      for (int sink : query_states_[i]->plan().SinkNodes()) {
        const RowStore& store = executions_[i]->output(sink);
        rows += static_cast<int64_t>(store.num_rows());
        for (size_t r = 0; r < store.num_rows(); ++r) {
          for (int col = 0; col < store.num_cols(); ++col) {
            checksum += store.at(r, col);
          }
        }
      }
    }
    out.sink_row_counts.push_back(rows);
    out.sink_checksums.push_back(checksum);
  }
  return out;
}

}  // namespace lsched

#ifndef LSCHED_EXEC_SERVING_HOOKS_H_
#define LSCHED_EXEC_SERVING_HOOKS_H_

#include "exec/exec_types.h"

namespace lsched {

class QueryState;
class SchedulingContext;

/// Outcome of an admission-control consultation (DESIGN.md §11).
///
/// `admit == false` sheds the arriving query itself: it becomes terminal
/// kShed before any execution state is allocated or the scheduler sees it.
/// `displace` (optional, only meaningful with `admit == true`) names a live
/// query the engine must shed FIRST to make room — the mechanism by which a
/// higher-priority arrival displaces a lower-priority pending query instead
/// of being refused (no priority inversion at the admission door).
struct AdmissionVerdict {
  bool admit = true;
  QueryId displace = kInvalidQuery;
};

/// Serving-layer callbacks threaded through both engines (DESIGN.md §11).
///
/// The serving daemon implements these once (admission control, per-tenant
/// weighted fairness, priority enforcement, tenant accounting) and installs
/// the same object into a SimEngine and a RealEngine, so the deterministic
/// virtual-clock mode and the real-thread mode make identical serving
/// decisions given identical event sequences.
///
/// Threading contract: every hook is invoked from the engine's coordinator
/// (SimEngine: the single simulation thread; RealEngine: the coordinator
/// thread), never concurrently. Implementations need no internal locking
/// for state touched only by hooks.
class ServingHooks {
 public:
  virtual ~ServingHooks() = default;

  /// Consulted when `q` arrives, after the query_admit fault point and
  /// before the query enters the scheduling context. `ctx` holds the
  /// currently live queries (the pending/running set the admission bound
  /// applies to). The verdict is recorded into the per-query lifetime
  /// trace (kAdmit/kShed/kDisplace edges, obs/query_trace.h) so `lsched_cli
  /// explain` can attribute admission waits to the decision that caused
  /// them.
  virtual AdmissionVerdict OnAdmission(const QueryState& q,
                                       const SchedulingContext& ctx,
                                       double now) = 0;

  /// Post-processes a policy decision in place, immediately after
  /// Schedule() returns and before the decision is recorded or applied:
  /// reorder/prune pipeline launches (priority classes, weighted fairness)
  /// and amend parallelism caps (per-tenant thread shares). May inject
  /// launches for starved high-priority queries; engines re-validate every
  /// choice in ApplyDecision, so an invalid injection is skipped, not
  /// fatal. Implementations should announce redirections/injections via
  /// obs::AnnotateServingAction — the EpisodeRecorder drains the
  /// annotations in the OnSchedulerInvocation that immediately follows on
  /// this same thread and turns them into causal trace edges
  /// (kRedirected/kInjected).
  virtual void FilterDecision(SchedulingDecision* decision,
                              const SchedulingContext& ctx) = 0;

  /// A query reached a terminal state (`q.status()` is terminal). Called
  /// for every terminal transition — DONE, CANCELLED, FAILED, and SHED —
  /// exactly once per query; the hook is the serving layer's accounting
  /// point for per-tenant metrics and fairness shares.
  virtual void OnQueryTerminal(const QueryState& q, double now) = 0;

  /// The engine refused `q` at the door WITHOUT consulting OnAdmission:
  /// an injected admission fault (terminal FAILED), a drain-time shed of
  /// queued-but-unadmitted work, or a cancel that raced ahead of the
  /// arrival. Lets the serving layer keep its arrival ledger complete —
  /// every query that reaches OnQueryTerminal was first seen either here
  /// or in OnAdmission. Called before the matching OnQueryTerminal.
  virtual void OnEngineRefused(const QueryState& q, double now) {
    (void)q;
    (void)now;
  }
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SERVING_HOOKS_H_

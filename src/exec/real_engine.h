#ifndef LSCHED_EXEC_REAL_ENGINE_H_
#define LSCHED_EXEC_REAL_ENGINE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "exec/episode_recorder.h"
#include "exec/episode_result.h"
#include "exec/kernels.h"
#include "exec/query_state.h"
#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "storage/catalog.h"

namespace lsched {

struct RealEngineConfig {
  int num_threads = 8;
  size_t chunk_rows = 4096;
  int max_rounds_per_event = 64;
};

struct RealQuerySubmission {
  QueryPlan plan;
  double arrival_offset_seconds = 0.0;  ///< wall-clock offset from run start
};

/// Result of a real execution run: scheduling telemetry plus per-query sink
/// output sizes/checksums for correctness verification.
struct RealRunResult {
  EpisodeResult episode;
  std::vector<int64_t> sink_row_counts;
  std::vector<double> sink_checksums;
};

/// Work-order execution engine with REAL worker threads running REAL
/// relational kernels over catalog blocks (the Quickstep-substitute
/// substrate, paper §2/§5.1): one coordinator ("scheduler thread") plus a
/// pool of workers, each executing fused pipeline work orders. Scheduling
/// policy decisions come from the same Scheduler interface the simulator
/// uses, so any policy (heuristic or learned) drives real execution
/// unchanged.
///
/// Simplification vs. the simulator: an execution root must have all its
/// producers completed (cross-thread producer/consumer streaming is not
/// supported; in-chain pipelining is). DESIGN.md documents this.
class RealEngine {
 public:
  RealEngine(const Catalog* catalog, RealEngineConfig config);

  RealRunResult Run(const std::vector<RealQuerySubmission>& workload,
                    Scheduler* scheduler);

 private:
  struct ActivePipeline {
    int query_index = -1;
    std::vector<int> chain;
    int total_fused = 0;
    int dispatched = 0;
    int inflight = 0;
    double created_at = 0.0;   ///< run clock time the pipeline was launched
    int64_t decision_id = -1;  ///< obs decision-log id that launched it
  };

  struct Completion {
    int thread_id = -1;
    int pipeline_index = -1;
    int wo_index = -1;
    double seconds = 0.0;
    Status status;
  };

  struct WorkerTask {
    bool shutdown = false;
    int query_index = -1;
    int pipeline_index = -1;
    std::vector<int> chain;
    int wo_index = 0;
  };

  /// Occupancy/locality state lives in the coordinator-owned
  /// SchedulingContext's ThreadInfo, keyed by `id`.
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::optional<WorkerTask> task;
    int id = -1;
  };

  void WorkerLoop(int worker_id);
  void PushCompletion(Completion c);

  // Coordinator helpers (no locking needed: only the coordinator mutates
  // scheduling state).
  void ApplyDecision(const SchedulingDecision& decision, double now);
  int AssignThreads(double now);
  void InvokeScheduler(const SchedulingEvent& event, Scheduler* scheduler,
                       double now);
  void ForceFallback(double now);

  const Catalog* catalog_;
  RealEngineConfig config_;

  // Per-run state (owned by the coordinator).
  std::vector<std::unique_ptr<QueryState>> query_states_;
  std::vector<std::unique_ptr<QueryExecution>> executions_;
  std::vector<ActivePipeline> pipelines_;
  std::vector<std::unique_ptr<Worker>> workers_;
  SchedulingContext ctx_;
  EpisodeRecorder recorder_;
  /// Decision-log id of the in-flight scheduler/fallback decision; tags
  /// pipelines created by ApplyDecision.
  int64_t current_decision_id_ = -1;

  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  std::deque<Completion> completions_;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_REAL_ENGINE_H_

#ifndef LSCHED_EXEC_REAL_ENGINE_H_
#define LSCHED_EXEC_REAL_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/episode_recorder.h"
#include "exec/episode_result.h"
#include "exec/kernels.h"
#include "exec/query_state.h"
#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "exec/serving_hooks.h"
#include "exec/worklist.h"
#include "storage/catalog.h"
#include "util/clock.h"

namespace lsched {

struct RealEngineConfig {
  int num_threads = 8;
  /// Scheduled worker-pool elasticity (paper §5.1 / Decima's scenario), at
  /// run-clock seconds from run/serving start. Elasticity operates on the
  /// LOGICAL worker slots the coordinator reserves work against: a grow
  /// adds fresh slots (kThreadAdded), a shrink retires idle slots
  /// immediately and busy slots as their in-flight work order completes
  /// (kThreadRemoved) — identical semantics to SimEngine's thread_events.
  /// Physical worker threads are sized once at spawn for the PEAK slot
  /// count (workers are interchangeable behind the shared worklist, so a
  /// surplus physical worker simply parks when fewer slots exist).
  std::vector<ThreadPoolEvent> thread_events;
  size_t chunk_rows = 4096;
  int max_rounds_per_event = 64;
  /// Retry/backoff policy for failed work-order attempts (DESIGN.md §10).
  RetryPolicy retry;
  /// Per-work-order deadline in run-clock seconds. Attempts observed past
  /// it before execution starts fail (and retry); attempts that overrun it
  /// during execution are accepted — the kernel's side effects are already
  /// applied, so a re-execution would double-apply them — and counted in
  /// num_work_orders_expired. 0 = no deadline.
  double work_order_deadline_seconds = 0.0;
  /// Scripted cancellations, applied at their run-clock times. A cancel at
  /// or before the query's arrival cancels it on admission. Episode mode
  /// only; serving mode cancels via CancelQuery().
  std::vector<CancelRequest> cancels;
  /// Serving-layer callbacks (admission control, fairness/priority decision
  /// post-processing, tenant accounting; DESIGN.md §11). Not owned; null =
  /// every arrival admitted, decisions applied verbatim.
  ServingHooks* hooks = nullptr;
  /// Rolling telemetry window: after this many additional terminal queries
  /// the recorder flushes to the shared observability layer and refreshes
  /// the thread-safe Snapshot(). 0 = flush only when the run/drain ends.
  int flush_window_queries = 0;
  /// Dispatch handoff implementation (DESIGN.md §12). The coordinator still
  /// reserves a logical worker slot per work order (identical locality and
  /// occupancy bookkeeping under either kind); the worklist only changes
  /// how the task reaches a physical worker thread. Default: the lock-free
  /// worklist, overridable at process level via LSCHED_WORKLIST
  /// (locking|atomic); explicit assignment beats the env var.
  WorklistKind worklist = WorklistKindFromEnv(WorklistKind::kAtomic);
};

struct RealQuerySubmission {
  QueryPlan plan;
  double arrival_offset_seconds = 0.0;  ///< wall-clock offset from run start
  QueryTag tag;  ///< tenant/priority (defaulted for single-tenant runs)
};

/// Result of a real execution run: scheduling telemetry plus per-query sink
/// output sizes/checksums for correctness verification.
struct RealRunResult {
  EpisodeResult episode;
  std::vector<int64_t> sink_row_counts;
  std::vector<double> sink_checksums;
};

/// Work-order execution engine with REAL worker threads running REAL
/// relational kernels over catalog blocks (the Quickstep-substitute
/// substrate, paper §2/§5.1): one coordinator ("scheduler thread") plus a
/// pool of workers, each executing fused pipeline work orders. Scheduling
/// policy decisions come from the same Scheduler interface the simulator
/// uses, so any policy (heuristic or learned) drives real execution
/// unchanged.
///
/// Two modes share the same coordinator logic (admission, dispatch,
/// completion processing, termination):
///
///  - Episode mode (`Run`): a fixed workload with scripted arrival offsets
///    runs to completion on the calling thread; the pool tears down at the
///    end. This is the historical one-shot path used by training/eval.
///
///  - Serving mode (`StartServing`/`Submit`/`Drain`, DESIGN.md §11): a
///    long-running service. A dedicated coordinator thread owns all
///    scheduling state; the worker pool never tears down between queries;
///    scheduler/policy state and the incremental SchedulingContext (with
///    its encoding caches) persist across the whole stream. Submit() is
///    thread-safe ingress; Drain() stops intake (queued-but-unadmitted
///    submissions are shed), lets running queries finish
///    (drain-don't-preempt), then tears down and returns the telemetry.
///
/// Simplification vs. the simulator: an execution root must have all its
/// producers completed (cross-thread producer/consumer streaming is not
/// supported; in-chain pipelining is). DESIGN.md documents this.
class RealEngine {
 public:
  RealEngine(const Catalog* catalog, RealEngineConfig config);
  ~RealEngine();

  RealRunResult Run(const std::vector<RealQuerySubmission>& workload,
                    Scheduler* scheduler);

  /// Requests cancellation of a live query. Thread-safe; may be called from
  /// any thread while Run() or serving is active. The coordinator applies
  /// it promptly: the query is marked CANCELLED, its pending work orders
  /// are dropped, in-flight attempts are discarded when they come back, and
  /// its execution state (blocks, hash tables, intermediate stores) is
  /// freed as soon as the last in-flight attempt drains. Unknown or
  /// already-terminal queries are no-ops.
  void CancelQuery(QueryId query);

  /// --- long-running serving mode (DESIGN.md §11) ------------------------

  /// Starts the serving coordinator thread and the standing worker pool.
  /// `scheduler` must outlive the serving session; its state persists
  /// across every query of the stream (never Reset between queries).
  void StartServing(Scheduler* scheduler);

  /// Thread-safe ingress: enqueues a query for admission and returns its
  /// QueryId, or kInvalidQuery when not serving / draining. Every id ever
  /// returned reaches exactly one terminal status (DONE, CANCELLED,
  /// FAILED, or SHED) by the time Drain() returns — zero-loss accounting.
  QueryId Submit(QueryPlan plan, QueryTag tag = QueryTag{});

  /// Graceful drain: refuses new submissions, sheds queued-but-unadmitted
  /// ones, lets running queries finish, then joins the coordinator and
  /// worker pool and returns the full-stream telemetry.
  RealRunResult Drain();

  /// Latest rolling-window snapshot of the stream telemetry (refreshed
  /// every `flush_window_queries` terminal queries). Thread-safe.
  EpisodeResult Snapshot() const;

  bool serving() const { return serving_.load(std::memory_order_acquire); }

 private:
  struct ActivePipeline {
    int query_index = -1;
    std::vector<int> chain;
    int total_fused = 0;
    int dispatched = 0;  ///< attempts handed to workers (incl. retries)
    int inflight = 0;
    int next_wo = 0;     ///< next fresh work-order index to dispatch
    int succeeded = 0;   ///< work orders that completed successfully
    bool dead = false;   ///< query reached a terminal state; stop dispatching
    std::vector<int> retry_ready;  ///< failed work orders awaiting re-dispatch
    std::unordered_map<int, int> attempts;  ///< failed attempts per work order
    double not_before = 0.0;  ///< retry backoff: no dispatch before this time
    double created_at = 0.0;   ///< run clock time the pipeline was launched
    int64_t decision_id = -1;  ///< obs decision-log id that launched it
  };

  struct Completion {
    /// Logical worker slot (ThreadInfo id) the coordinator reserved for the
    /// attempt — NOT the physical worker thread that ran it. All occupancy
    /// and locality bookkeeping is keyed by slot.
    int thread_id = -1;
    int pipeline_index = -1;
    int wo_index = -1;
    double seconds = 0.0;
    bool expired = false;  ///< attempt failed its deadline before executing
    Status status;
  };

  struct WorkerTask {
    bool shutdown = false;
    int query_index = -1;
    int pipeline_index = -1;
    /// Logical worker slot reserved by the coordinator (ctx_ ThreadInfo
    /// id); echoed back in Completion::thread_id by whichever physical
    /// worker claims the task.
    int slot_id = -1;
    /// Stable pointer to the query's execution. Workers must NOT index
    /// executions_: the serving coordinator grows that vector while workers
    /// run, and a reallocation would race the read. The pointee is safe —
    /// the coordinator only releases an execution once no attempt of its
    /// query is in flight (tasks parked in the worklist count as in
    /// flight from the moment they are pushed).
    QueryExecution* execution = nullptr;
    std::vector<int> chain;
    int wo_index = 0;
    double issued_at = 0.0;         ///< run-clock time of dispatch
    double deadline_seconds = 0.0;  ///< per-work-order deadline (0 = none)
  };

  /// Physical worker thread. Tasks arrive through the shared worklist_
  /// (DESIGN.md §12), not per-worker mailboxes; occupancy/locality state
  /// lives in the coordinator-owned SchedulingContext's ThreadInfo, keyed
  /// by the task's slot_id.
  struct Worker {
    std::thread thread;
    int id = -1;
    /// Worker-state accountant (DESIGN.md §8.3): written only by the
    /// worker thread itself; the coordinator/sampler read it racily.
    prof::WorkerAccount acct;
    /// Per-worker arena: row buffers reused across every work order this
    /// thread executes (allocation-free steady state).
    WorkOrderScratch scratch;
  };

  /// A Submit() awaiting the coordinator (guarded by completion_mu_).
  struct PendingSubmission {
    QueryId id = kInvalidQuery;
    QueryPlan plan;
    QueryTag tag;
  };

  void WorkerLoop(int worker_id);
  void PushCompletion(Completion c);
  /// The wait-state bucket a parked worker should charge right now,
  /// derived from the drain/stall hints (heuristic — only the bucket sums
  /// are exact).
  prof::WorkerState CurrentWaitState() const {
    if (pool_draining_.load(std::memory_order_relaxed) ||
        draining_.load(std::memory_order_relaxed)) {
      return prof::WorkerState::kDraining;
    }
    return stall_hint_.load(std::memory_order_relaxed)
               ? prof::WorkerState::kStalled
               : prof::WorkerState::kIdle;
  }

  // Coordinator helpers (no locking needed: only the coordinator mutates
  // scheduling state). Shared verbatim between episode and serving mode.
  void SetupRun(Scheduler* scheduler, size_t num_queries);
  void SpawnWorkers();
  /// The physical pool size: the peak logical-slot count over the scripted
  /// thread_events (workers are spawned once, slots come and go).
  int PeakPoolSize() const;
  /// Applies every thread_events entry due at `now`: grows/retires logical
  /// slots and fires kThreadAdded/kThreadRemoved at the scheduler. Called
  /// from the top of both coordinator loops.
  void ApplyDueThreadEvents(double now, Scheduler* scheduler);
  /// Admits query `qid` (tables must already cover the id and hold null):
  /// creates its state, probes the query_admit fault point, consults the
  /// serving hooks (shed / displace), allocates its execution, and fires
  /// the arrival event at the scheduler.
  void AdmitArrival(QueryId qid, QueryPlan plan, const QueryTag& tag,
                    double now, Scheduler* scheduler);
  /// Terminates `qid` as CANCELLED and notifies the scheduler. Returns
  /// false for unknown/terminal queries.
  bool CancelLive(QueryId qid, double t, Scheduler* scheduler);
  /// Applies one worker completion: frees the worker, advances or retries
  /// or discards, detects query completion, fires follow-up scheduler
  /// events.
  void ProcessCompletion(const Completion& c, double now,
                         Scheduler* scheduler);
  void ApplyDecision(const SchedulingDecision& decision, double now);
  int AssignThreads(double now);
  void InvokeScheduler(const SchedulingEvent& event, Scheduler* scheduler,
                       double now);
  void ForceFallback(double now);
  /// Moves a live query to terminal `status` (kCancelled/kFailed, or kShed
  /// for admission-time displacement of a still-ADMITTED query): flips the
  /// state machine, kills its pipelines (accounting dropped work orders),
  /// removes it from the scheduling context, and frees its execution once
  /// no attempt is in flight. Returns false for unknown/already-terminal
  /// queries. Coordinator thread only.
  bool TerminateQuery(QueryId query, QueryStatus status, double now);
  /// Frees a terminal (non-DONE) query's execution state once its last
  /// in-flight attempt has drained. Coordinator thread only.
  void MaybeReleaseExecution(int query_index);
  /// Captures a DONE query's sink rows/checksum and releases its execution
  /// immediately — serving streams must not accumulate per-query state.
  void ExtractSink(int query_index);
  int InflightFor(int query_index) const;
  /// Waits out attempts still in flight for terminal queries (work-order
  /// conservation), then checks no terminal query leaked execution state.
  void DrainOutstanding();
  void ShutdownPool();
  /// Publishes a rolling telemetry window + refreshes Snapshot() when
  /// flush_window_queries terminal queries accumulated since the last one.
  void MaybeFlushWindow(double now);
  /// Per-worker accountant buckets, in worker-id order. Exact once the
  /// pool has shut down; a racy-but-safe live approximation while workers
  /// run (used for rolling /metrics refreshes).
  std::vector<prof::WorkerStateBuckets> CollectWorkerStates() const;
  RealRunResult BuildResult();
  /// Serving coordinator body: intake → cancels → completions until drained.
  void ServeLoop();

  const Catalog* catalog_;
  RealEngineConfig config_;

  // Per-run state (owned by the coordinator).
  std::vector<std::unique_ptr<QueryState>> query_states_;
  std::vector<std::unique_ptr<QueryExecution>> executions_;
  std::vector<ActivePipeline> pipelines_;
  std::vector<std::unique_ptr<Worker>> workers_;
  /// Shared dispatch queue (coordinator pushes, workers claim). Created by
  /// SpawnWorkers before any worker thread starts; workers only read the
  /// pointer, so no synchronization is needed on the pointer itself.
  std::unique_ptr<Worklist<WorkerTask>> worklist_;
  SchedulingContext ctx_;
  EpisodeRecorder recorder_;
  /// Sink output captured at query completion (indexed by QueryId; grows
  /// with the query table in serving mode).
  std::vector<int64_t> sink_rows_;
  std::vector<double> sink_checksums_;
  /// Decision-log id of the in-flight scheduler/fallback decision; tags
  /// pipelines created by ApplyDecision.
  int64_t current_decision_id_ = -1;
  /// Queries that reached a terminal state (DONE+CANCELLED+FAILED+SHED).
  int terminal_queries_ = 0;
  /// Pool elasticity (coordinator-only): scripted events sorted by time,
  /// the next one due, a fresh id source for grown slots, and the count of
  /// busy slots awaiting retirement (they retire in ProcessCompletion as
  /// their in-flight work order drains — SimEngine's exact semantics).
  std::vector<ThreadPoolEvent> sorted_thread_events_;
  size_t next_thread_event_ = 0;
  int next_slot_id_ = 0;
  int pending_slot_removals_ = 0;
  /// terminal_queries_ at the last rolling-window flush.
  int last_flush_terminals_ = 0;
  /// Run clock, published (before workers spawn) for worker-side deadline
  /// checks; read-only while workers are alive.
  const Clock* run_clock_ = nullptr;

  /// Worker-state classification hints, read by workers when they go back
  /// to waiting (heuristic — only the bucket sums are exact):
  /// stall_hint_ true = live query work exists that a free worker cannot
  /// run right now (dependency/backoff/parallelism-cap blocked), so a
  /// waiting worker is "stalled", not "idle". Maintained by AssignThreads.
  std::atomic<bool> stall_hint_{false};
  /// Set for the DrainOutstanding/ShutdownPool teardown window so workers
  /// account their final wait as "draining".
  std::atomic<bool> pool_draining_{false};
  /// SamplingProfiler registration for the live pool (0 = none).
  int profiler_handle_ = 0;

  std::mutex completion_mu_;
  std::condition_variable completion_cv_;
  std::deque<Completion> completions_;
  /// CancelQuery() requests awaiting the coordinator (completion_mu_).
  std::vector<CancelRequest> external_cancels_;

  // --- serving mode -------------------------------------------------------
  std::thread coordinator_;
  Scheduler* serving_scheduler_ = nullptr;
  std::atomic<bool> serving_{false};
  std::atomic<bool> draining_{false};
  /// Owns the run clock for the serving session (episode mode uses a
  /// stack-local clock inside Run).
  std::optional<WallClock> serving_clock_;
  /// Next QueryId to hand out from Submit() (completion_mu_).
  QueryId next_query_id_ = 0;
  /// Submissions awaiting coordinator intake (completion_mu_).
  std::vector<PendingSubmission> pending_submissions_;
  /// Filled by the coordinator as it exits; consumed by Drain().
  RealRunResult serving_result_;
  mutable std::mutex snapshot_mu_;
  EpisodeResult snapshot_;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_REAL_ENGINE_H_

#ifndef LSCHED_EXEC_QUERY_STATE_H_
#define LSCHED_EXEC_QUERY_STATE_H_

#include <memory>
#include <vector>

#include "exec/exec_types.h"
#include "plan/query_plan.h"
#include "util/math_util.h"

namespace lsched {

/// Runtime progress of one query: per-operator work-order counters and the
/// execution-statistics estimators the dynamic features are computed from
/// (paper §4.1: O-WO, O-DUR, O-MEM are recalculated from the execution
/// monitor at every scheduling event).
class QueryState {
 public:
  QueryState(QueryId id, QueryPlan plan, double arrival_time,
             size_t regression_window = 32);

  QueryId id() const { return id_; }
  const QueryPlan& plan() const { return plan_; }
  double arrival_time() const { return arrival_time_; }

  /// Serving metadata (tenant + priority class); defaulted for episode-mode
  /// workloads that predate multi-tenancy.
  const QueryTag& tag() const { return tag_; }
  void set_tag(const QueryTag& tag) { tag_ = tag; }

  bool completed() const { return completed_ops_ == plan_.num_nodes(); }
  double completion_time() const { return completion_time_; }
  void set_completion_time(double t) { completion_time_ = t; }

  /// --- lifecycle state machine (DESIGN.md §10) --------------------------

  QueryStatus status() const { return status_; }

  /// Attempts the lifecycle transition to `to`. Returns true when the query
  /// is in state `to` after the call (including the idempotent same-state
  /// case); returns false — leaving the state unchanged — for illegal
  /// transitions, so terminal states absorb all later requests
  /// (double-cancel, cancel-after-done, fail-after-cancel are no-ops).
  bool TransitionTo(QueryStatus to);

  /// --- per-operator progress -------------------------------------------

  bool op_completed(int op) const { return ops_[op].completed; }
  bool op_scheduled(int op) const { return ops_[op].scheduled; }
  void set_op_scheduled(int op, bool v) { ops_[op].scheduled = v; }

  /// Remaining work orders (dynamic O-WO). Fractional progress from fused
  /// pipeline work orders is rounded up.
  double RemainingWorkOrders(int op) const { return ops_[op].remaining; }

  int CompletedWorkOrders(int op) const { return ops_[op].completed_wos; }

  /// Advances `op` by `amount` work orders (can be fractional for pipelined
  /// stages) and records the observed duration/memory of that slice in the
  /// estimators. Returns true when the operator just completed.
  bool AdvanceOperator(int op, double amount, double observed_seconds,
                       double observed_memory);

  /// True when every blocking producer has completed and every non-blocking
  /// producer has completed or is currently scheduled (paper §5.3.1:
  /// "an operator is schedulable if all its blocking parents are completely
  /// executed"), and the operator itself is neither scheduled nor done.
  bool IsOpSchedulable(int op) const;

  /// All currently schedulable operator ids.
  std::vector<int> SchedulableOps() const;

  /// Longest valid pipeline starting at `root` *right now*: follows
  /// non-breaking edges while each next consumer's other producers are
  /// completed. Index 0 is `root`.
  std::vector<int> ValidPipelineFrom(int root) const;

  /// --- dynamic estimates (execution monitor) ----------------------------

  /// Estimated seconds for the next work order of `op`: windowed linear
  /// regression over previously completed work orders (paper footnote 1),
  /// falling back to the optimizer estimate before any completions.
  double EstimateNextWorkOrderSeconds(int op) const;

  /// Estimated memory for the next work order of `op`.
  double EstimateNextWorkOrderMemory(int op) const;

  /// O-DUR: estimated total remaining seconds of `op`.
  double EstimateRemainingSeconds(int op) const;

  /// O-MEM: estimated total remaining memory of `op`.
  double EstimateRemainingMemory(int op) const;

  /// Sum of O-DUR over all unfinished operators (used by SJF et al.).
  double EstimateQueryRemainingSeconds() const;

  /// --- thread accounting -------------------------------------------------

  /// Total thread-seconds of work orders completed for this query so far
  /// ("attained service" — the signal priority-decay schedulers like
  /// SelfTune's stride scheduling use in place of cost estimates).
  double attained_service() const { return attained_service_; }
  void AddAttainedService(double seconds) { attained_service_ += seconds; }

  int assigned_threads() const { return assigned_threads_; }
  void set_assigned_threads(int n) { assigned_threads_ = n; }
  int max_threads() const { return max_threads_; }
  void set_max_threads(int n) { max_threads_ = n; }

  /// --- latency decomposition (DESIGN.md §8.2) ---------------------------

  /// Where this query's lifetime went (admission/queue/service/stall).
  /// Filled by EpisodeRecorder at the terminal transition, *before*
  /// ServingHooks::OnQueryTerminal fires, so serving-layer ledgers
  /// (TenantTable) can read it. `breakdown().valid` is false until then.
  const LatencyBreakdown& breakdown() const { return breakdown_; }
  void set_breakdown(const LatencyBreakdown& b) { breakdown_ = b; }

 private:
  struct OpRuntime {
    double remaining = 0.0;  ///< remaining work orders (fractional)
    int completed_wos = 0;
    bool scheduled = false;
    bool completed = false;
    WindowedLinearRegression dur_reg;
    WindowedLinearRegression mem_reg;
  };

  QueryId id_;
  QueryPlan plan_;
  double arrival_time_;
  QueryTag tag_;
  double completion_time_ = -1.0;
  QueryStatus status_ = QueryStatus::kAdmitted;
  std::vector<OpRuntime> ops_;
  size_t completed_ops_ = 0;
  double attained_service_ = 0.0;
  int assigned_threads_ = 0;
  int max_threads_ = 0;  ///< 0 = unlimited
  LatencyBreakdown breakdown_;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_QUERY_STATE_H_

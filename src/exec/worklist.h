#ifndef LSCHED_EXEC_WORKLIST_H_
#define LSCHED_EXEC_WORKLIST_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace lsched {

/// Which Worklist implementation an engine uses (DESIGN.md §12).
enum class WorklistKind {
  kLocking,  ///< mutex+cv guarded deque (the ported PR-1..8 handoff)
  kAtomic,   ///< lock-free bounded MPMC ring (atomic claim; the default)
};

const char* WorklistKindName(WorklistKind kind);
bool ParseWorklistKind(const std::string& name, WorklistKind* out);

/// Reads LSCHED_WORKLIST (locking|atomic); returns `fallback` when unset
/// or unparseable.
WorklistKind WorklistKindFromEnv(WorklistKind fallback);

/// Shared work queue between a producer (the coordinator) and a pool of
/// consumer workers. The narrow seam that lets the dispatch handoff be
/// swapped between a mutex+cv implementation and a lock-free one while
/// every piece of scheduling bookkeeping stays identical (DESIGN.md §12).
///
/// Contract:
///  - Push never blocks the producer on consumers (the lock-free
///    implementation may briefly yield if the ring is saturated far beyond
///    the engine's bounded in-flight window).
///  - TryPopClaim claims exactly one item or returns false immediately.
///  - PopClaimWait is TryPopClaim plus bounded parking: it returns false
///    after `timeout` without an item, so consumers can re-examine engine
///    state (drain flags, state-accounting hints) even when no work comes.
///  - Drain empties the queue from the caller's thread (producer-side
///    teardown/test inspection); items claimed by it are never seen by
///    consumers.
///  - Every pushed item is claimed by exactly one caller of
///    TryPopClaim/PopClaimWait/Drain — the conservation property the
///    engine's work-order counters are built on.
template <typename T>
class Worklist {
 public:
  virtual ~Worklist() = default;

  virtual void Push(T item) = 0;
  virtual bool TryPopClaim(T* out) = 0;
  virtual bool PopClaimWait(T* out, std::chrono::milliseconds timeout) = 0;
  virtual std::vector<T> Drain() = 0;
  /// Instantaneous item count (approximate under concurrency).
  virtual size_t Size() const = 0;
};

/// The original coordinator→worker handoff, ported behind the seam: one
/// mutex+condition-variable guarded deque shared by the pool.
template <typename T>
class LockingWorklist : public Worklist<T> {
 public:
  void Push(T item) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  bool TryPopClaim(T* out) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  bool PopClaimWait(T* out, std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty(); })) {
      return false;
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  std::vector<T> Drain() override {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out;
    out.reserve(items_.size());
    for (T& item : items_) out.push_back(std::move(item));
    items_.clear();
    return out;
  }

  size_t Size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

/// Lock-free bounded MPMC ring in the spirit of Cavalia's shared-worklist
/// scheduler: producers and consumers claim slots with one atomic RMW on
/// the hot path and never take a lock. Each cell carries a sequence number
/// (Vyukov's scheme) — the generalization of the fetch-add claim that also
/// supports streaming (wrap-around) and non-blocking TryPopClaim:
///
///   cell.seq == pos       → cell is free for the producer claiming pos
///   cell.seq == pos + 1   → cell holds the item for the consumer at pos
///   otherwise             → another thread is mid-claim; reload and retry
///
/// Memory ordering: the producer's release store of seq = pos+1 publishes
/// the item; the consumer's acquire load of seq synchronizes with it, so
/// the item read happens-after the item write (same pairing consumer→
/// producer on wrap via seq = pos+capacity). The pos counters themselves
/// only need the RMW's own atomicity (relaxed), because cell.seq carries
/// all cross-thread publication.
///
/// Empty-path parking: consumers spin briefly, then register as sleepers
/// and block on a cv with a timeout. Push wakes a sleeper only when the
/// sleeper count says one exists, so the steady-state busy pool never
/// touches the mutex. Seq-cst fences pair the producer's "push then read
/// sleepers" with the consumer's "register then re-check queue" so a
/// wakeup can never be lost between the check and the sleep.
template <typename T>
class AtomicWorklist : public Worklist<T> {
 public:
  /// Capacity is rounded up to a power of two, at least `min_capacity`.
  /// The engine's producer pushes at most one item per reserved worker
  /// slot, so any capacity >= 2 * num_threads can never see a full ring;
  /// Push still handles saturation (yield + retry) for standalone users.
  explicit AtomicWorklist(size_t min_capacity = 256) {
    size_t cap = 64;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    capacity_ = cap;
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  void Push(T item) override {
    while (!TryPush(&item)) std::this_thread::yield();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (sleepers_.load(std::memory_order_relaxed) > 0) {
      // The mutex acquisition orders this notify after the sleeper's
      // registration: either it sees the item on its pre-sleep re-check
      // or this notify lands after it blocked.
      std::lock_guard<std::mutex> lock(wait_mu_);
      wait_cv_.notify_one();
    }
  }

  bool TryPopClaim(T* out) override {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(cell.item);
          cell.item = T{};  // drop claimed payload eagerly
          cell.seq.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or the producer for this cell is mid-claim)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool PopClaimWait(T* out, std::chrono::milliseconds timeout) override {
    for (int spin = SpinIterations(); spin > 0; --spin) {
      if (TryPopClaim(out)) return true;
      std::this_thread::yield();
    }
    if (TryPopClaim(out)) return true;
    std::unique_lock<std::mutex> lock(wait_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    const bool got =
        wait_cv_.wait_for(lock, timeout, [&] { return TryPopClaim(out); });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    return got;
  }

  std::vector<T> Drain() override {
    std::vector<T> out;
    T item;
    while (TryPopClaim(&item)) out.push_back(std::move(item));
    return out;
  }

  size_t Size() const override {
    const size_t e = enqueue_pos_.load(std::memory_order_relaxed);
    const size_t d = dequeue_pos_.load(std::memory_order_relaxed);
    return e > d ? e - d : 0;
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Pre-park spin budget. Spinning only pays when a producer can make
  /// progress on another core while we burn cycles here; on a single-CPU
  /// machine every spin steals the quantum the producer needs, so the
  /// consumer parks immediately instead.
  static int SpinIterations() {
    static const int n =
        std::thread::hardware_concurrency() > 1 ? kSpinIterations : 0;
    return n;
  }

  static constexpr int kSpinIterations = 64;

  struct Cell {
    std::atomic<size_t> seq;
    T item;
  };

  bool TryPush(T* item) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.item = std::move(*item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::unique_ptr<Cell[]> cells_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  // Separate cache lines: producers touch enqueue_pos_, consumers
  // dequeue_pos_; sharing a line would bounce it on every claim.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};

  alignas(64) std::atomic<int> sleepers_{0};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
};

/// Factory keyed by WorklistKind. `capacity_hint` bounds the lock-free
/// ring (rounded up; ignored by LockingWorklist).
template <typename T>
std::unique_ptr<Worklist<T>> MakeWorklist(WorklistKind kind,
                                          size_t capacity_hint = 256) {
  switch (kind) {
    case WorklistKind::kLocking:
      return std::make_unique<LockingWorklist<T>>();
    case WorklistKind::kAtomic:
      return std::make_unique<AtomicWorklist<T>>(capacity_hint);
  }
  return std::make_unique<LockingWorklist<T>>();
}

}  // namespace lsched

#endif  // LSCHED_EXEC_WORKLIST_H_

#include "exec/episode_recorder.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "exec/query_state.h"
#include "obs/trace.h"
#include "plan/operator_type.h"
#include "util/math_util.h"

namespace lsched {

namespace {

/// "q:op" pairs of every currently-schedulable operator, truncated to
/// kMaxLoggedCandidates. Also counts the full set, and (when `schedulable`
/// is non-null) collects the id of every query with at least one
/// schedulable operator — the trace layer's considered-but-skipped set —
/// so the per-invocation plan walk happens exactly once.
std::string CandidateSetString(const SchedulingContext& ctx, int* count,
                               std::vector<QueryId>* schedulable) {
  std::string out;
  out.reserve(128);
  int n = 0;
  char buf[48];
  for (const QueryState* q : ctx.queries()) {
    // Probe IsOpSchedulable directly: SchedulableOps() allocates a vector
    // per query, too hot for a path run on every scheduler invocation.
    const int ops = static_cast<int>(q->plan().num_nodes());
    bool any = false;
    for (int op = 0; op < ops; ++op) {
      if (!q->IsOpSchedulable(op)) continue;
      if (!any && schedulable != nullptr) schedulable->push_back(q->id());
      any = true;
      ++n;
      if (n <= obs::kMaxLoggedCandidates) {
        std::snprintf(buf, sizeof(buf), "%s%lld:%d", out.empty() ? "" : ";",
                      static_cast<long long>(q->id()), op);
        out += buf;
      }
    }
  }
  if (n > obs::kMaxLoggedCandidates) {
    std::snprintf(buf, sizeof(buf), "+%d", n - obs::kMaxLoggedCandidates);
    out += buf;
  }
  *count = n;
  return out;
}

/// Static names/categories/arg labels per SimSpanKind, applied when the
/// compact episode buffer is expanded into TraceEvents (Finalize).
struct SpanMeta {
  const char* name;
  const char* category;
  const char* arg1_name;
  const char* arg2_name;
};
constexpr SpanMeta kSpanMeta[] = {
    {"engine.work_order", "engine", "query", "pipeline"},
    {"sched.queue_wait", "sched", "query", nullptr},
    {"sched.pipeline_launch", "sched", "query", "root_op"},
    {"engine.query_completed", "engine", "query", nullptr},
    {"engine.query_terminated", "engine", "query", "status"},
};

}  // namespace

EpisodeRecorder::EpisodeRecorder() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  invocations_ = reg.GetCounter("sched.invocations");
  actions_ = reg.GetCounter("sched.pipelines_launched");
  fallbacks_ = reg.GetCounter("sched.fallback_decisions");
  work_orders_dispatched_ = reg.GetCounter("engine.work_orders_dispatched");
  work_orders_completed_ = reg.GetCounter("engine.work_orders_completed");
  queries_completed_ = reg.GetCounter("engine.queries_completed");
  cancel_total_ = reg.GetCounter("exec.cancel_total");
  retry_total_ = reg.GetCounter("exec.retry_total");
  fail_total_ = reg.GetCounter("exec.fail_total");
  shed_total_ = reg.GetCounter("exec.shed_total");
  inflight_high_water_ = reg.GetGauge("engine.inflight_high_water");
  sched_overhead_fraction_ = reg.GetGauge("exec.sched_overhead_fraction");
  decision_seconds_ = reg.GetHistogram("sched.decision_seconds");
  pipeline_degree_ = reg.GetHistogram("sched.pipeline_degree");
  queue_wait_seconds_ = reg.GetHistogram("sched.queue_wait_seconds");
  work_order_seconds_ = reg.GetHistogram("engine.work_order_seconds");
  query_latency_seconds_ = reg.GetHistogram("engine.query_latency_seconds");
}

void EpisodeRecorder::Begin(const char* engine_name, Scheduler* scheduler,
                            bool virtual_time, size_t num_queries) {
  result_ = EpisodeResult{};
  result_.final_statuses.assign(num_queries, QueryStatus::kAdmitted);
  result_.query_breakdowns.assign(num_queries, LatencyBreakdown{});
  timelines_.clear();
  timelines_.resize(num_queries);
#if LSCHED_OBS_ENABLED
  query_edges_.clear();
  trace_on_ =
      obs::Enabled() && obs::QueryTraceLog::Global().capture_enabled();
#endif
  engine_name_ = engine_name;
  scheduler_ = scheduler;
  virtual_time_ = virtual_time;
  realized_base_ = -1;
  realized_seconds_.clear();
  vs_next_ = 0;
  vs_total_ = 0;
  if (virtual_time && obs::Enabled()) {
    const size_t cap = obs::Tracer::Global().capacity();
    if (virtual_spans_.size() != cap) virtual_spans_.resize(cap);
  } else {
    virtual_spans_.clear();
  }
  local_invocations_ = 0;
  local_actions_ = 0;
  local_fallbacks_ = 0;
  local_dispatched_ = 0;
  local_completed_ = 0;
  local_queries_completed_ = 0;
  local_cancels_ = 0;
  local_retries_ = 0;
  local_query_failures_ = 0;
  local_sheds_ = 0;
  flushed_inflight_high_water_ = 0;
  lh_decision_seconds_.Reset();
  lh_pipeline_degree_.Reset();
  lh_queue_wait_seconds_.Reset();
  lh_work_order_seconds_.Reset();
  lh_query_latency_seconds_.Reset();
}

void EpisodeRecorder::TrackQuery(QueryId qid) {
  if (qid < 0) return;
  const size_t n = static_cast<size_t>(qid) + 1;
  if (result_.final_statuses.size() < n) {
    result_.final_statuses.resize(n, QueryStatus::kAdmitted);
  }
}

EpisodeRecorder::QueryTimeline* EpisodeRecorder::TimelineFor(
    QueryId qid, double arrival_time) {
  if (qid < 0) return nullptr;
  const size_t idx = static_cast<size_t>(qid);
  if (timelines_.size() <= idx) timelines_.resize(idx + 1);
  QueryTimeline& t = timelines_[idx];
  if (!t.started) {
    t.started = true;
    t.arrival_ns = LatencyNs(arrival_time);
    t.last_ns = t.arrival_ns;
  }
  return &t;
}

void EpisodeRecorder::AdvanceTimeline(QueryTimeline& t, double now) {
  // Charge the elapsed nanoseconds to the *current* mode, then let the
  // caller apply the state change. Deltas telescope from arrival to
  // terminal, which is what makes the decomposition sum exact.
  const int64_t now_ns = LatencyNs(now);
  const int64_t delta = now_ns - t.last_ns;
  if (t.inflight > 0) {
    t.breakdown.service_ns += delta;
  } else if (t.retries_pending > 0) {
    t.breakdown.stall_ns += delta;
  } else if (t.launched) {
    t.breakdown.queue_ns += delta;
  } else {
    t.breakdown.admission_ns += delta;
  }
  t.last_ns = now_ns;
}

void EpisodeRecorder::FinishTimeline(QueryState* query, double now) {
  QueryTimeline* t = TimelineFor(query->id(), query->arrival_time());
  if (t == nullptr || t->finished) return;
  AdvanceTimeline(*t, now);
  t->finished = true;
  t->breakdown.total_ns = LatencyNs(now) - t->arrival_ns;
  t->breakdown.valid = true;
  query->set_breakdown(t->breakdown);

  const size_t idx = static_cast<size_t>(query->id());
  if (result_.query_breakdowns.size() <= idx) {
    result_.query_breakdowns.resize(idx + 1);
  }
  result_.query_breakdowns[idx] = t->breakdown;
  result_.sum_admission_wait_ns += t->breakdown.admission_ns;
  result_.sum_queue_wait_ns += t->breakdown.queue_ns;
  result_.sum_service_time_ns += t->breakdown.service_ns;
  result_.sum_stall_time_ns += t->breakdown.stall_ns;
  result_.sum_latency_ns += t->breakdown.total_ns;
  ++result_.num_queries_decomposed;

#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::QueryTraceRecord rec;
    rec.query = query->id();
    rec.tenant = query->tag().tenant;
    rec.priority = static_cast<int32_t>(query->tag().priority);
    rec.engine = engine_name_;
    rec.final_status = static_cast<int32_t>(query->status());
    rec.arrival_time = query->arrival_time();
    rec.terminal_time = now;
    rec.breakdown = t->breakdown;
    if (query_edges_.size() <= idx) query_edges_.resize(idx + 1);
    QueryEdges& qe = query_edges_[idx];
    obs::TraceEdge term;
    term.time = now;
    term.kind = obs::TraceEdgeKind::kTerminal;
    term.a = static_cast<int64_t>(query->status());
    term.value = t->breakdown.total_seconds();
    qe.edges.push_back(term);  // always kept, even past the cap
    rec.edges = std::move(qe.edges);
    rec.dropped_edges = qe.dropped;
    qe = QueryEdges{};  // release the slot's memory in serving mode
    obs::QueryTraceLog::Global().Record(std::move(rec));
  }
#endif
}

#if LSCHED_OBS_ENABLED
void EpisodeRecorder::AddTraceEdge(QueryId qid, const obs::TraceEdge& e) {
  if (qid < 0) return;
  const size_t idx = static_cast<size_t>(qid);
  if (query_edges_.size() <= idx) query_edges_.resize(idx + 1);
  QueryEdges& qe = query_edges_[idx];
  if (qe.edges.size() >= static_cast<size_t>(obs::kMaxTraceEdgesPerQuery)) {
    ++qe.dropped;
    return;
  }
  qe.edges.push_back(e);
}
#endif

void EpisodeRecorder::OnQueryArrival(const QueryState& query, double /*now*/) {
  TimelineFor(query.id(), query.arrival_time());
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = query.arrival_time();
    e.kind = obs::TraceEdgeKind::kArrival;
    e.a = query.tag().tenant;
    e.b = static_cast<int64_t>(query.tag().priority);
    AddTraceEdge(query.id(), e);
  }
#endif
}

void EpisodeRecorder::OnAdmissionVerdict(QueryId qid, double now,
                                         bool admitted, QueryId displaced) {
#if LSCHED_OBS_ENABLED
  if (!trace_on_) return;
  obs::TraceEdge e;
  e.time = now;
  if (admitted) {
    e.kind = obs::TraceEdgeKind::kAdmit;
    e.a = displaced != kInvalidQuery ? 1 : 0;
    AddTraceEdge(qid, e);
    if (displaced != kInvalidQuery) {
      obs::TraceEdge d;
      d.time = now;
      d.kind = obs::TraceEdgeKind::kDisplace;
      d.a = displaced;
      AddTraceEdge(qid, d);
    }
  } else {
    e.kind = obs::TraceEdgeKind::kShed;
    AddTraceEdge(qid, e);
  }
#else
  (void)qid;
  (void)now;
  (void)admitted;
  (void)displaced;
#endif
}

void EpisodeRecorder::OnQueryDisplaced(QueryId victim, QueryId newcomer,
                                       double now) {
#if LSCHED_OBS_ENABLED
  if (!trace_on_) return;
  obs::TraceEdge e;
  e.time = now;
  e.kind = obs::TraceEdgeKind::kDisplacedBy;
  e.a = newcomer;
  AddTraceEdge(victim, e);
#else
  (void)victim;
  (void)newcomer;
  (void)now;
#endif
}

int64_t EpisodeRecorder::OnSchedulerInvocation(
    const SchedulingEvent& event, const SchedulingContext& ctx,
    const SchedulingDecision& decision, double wall_seconds) {
  result_.scheduler_wall_seconds += wall_seconds;
  ++result_.num_scheduler_invocations;
  result_.decisions.push_back(
      {ctx.now(), static_cast<int>(ctx.queries().size())});

  if (!obs::Enabled()) return -1;
  ++local_invocations_;
  lh_decision_seconds_.Observe(wall_seconds);

  obs::DecisionRecord rec;
  rec.time = ctx.now();
  rec.engine = engine_name_;
  rec.event = SchedulingEventTypeName(event.type);
  rec.policy = scheduler_ != nullptr ? scheduler_->name() : "";
#if LSCHED_OBS_ENABLED
  considered_scratch_.clear();
  rec.candidates = CandidateSetString(ctx, &rec.num_candidates,
                                      trace_on_ ? &considered_scratch_
                                                : nullptr);
#else
  rec.candidates = CandidateSetString(ctx, &rec.num_candidates, nullptr);
#endif
  rec.running_queries = static_cast<int>(ctx.queries().size());
  rec.free_threads = ctx.num_free_threads();
  if (!decision.pipelines.empty()) {
    rec.chosen_query = decision.pipelines.front().query;
    rec.chosen_root = decision.pipelines.front().root_op;
    rec.degree = decision.pipelines.front().degree;
    // Operator type of the chosen root: the per-key attribution the drift
    // monitor groups prediction errors by.
    if (const QueryState* q = ctx.FindQuery(rec.chosen_query)) {
      if (rec.chosen_root >= 0 &&
          rec.chosen_root < static_cast<int>(q->plan().num_nodes())) {
        rec.op_type = OperatorTypeName(q->plan().node(rec.chosen_root).type);
      }
    }
  }
  if (!decision.parallelism.empty()) {
    rec.max_threads = decision.parallelism.front().max_threads;
  }
  rec.predicted_score = obs::TakePredictedScore();
  rec.schedule_wall_us = wall_seconds * 1e6;
  // Tenant of the chosen query: keys the per-tenant drift shards.
  if (rec.chosen_query >= 0) {
    if (const QueryState* q = ctx.FindQuery(rec.chosen_query)) {
      rec.tenant = q->tag().tenant;
    }
  }
  const int64_t chosen_query = rec.chosen_query;
  const double predicted_score = rec.predicted_score;
  const int64_t decision_id = obs::DecisionLog::Global().Add(std::move(rec));

  // Drain the serving-action channel even when tracing is off, so stale
  // annotations from one invocation can never leak into a later one.
  obs::ServingAction actions[32];
  const size_t num_actions =
      obs::TakeServingActions(actions, sizeof(actions) / sizeof(actions[0]));
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    // "Considered but skipped": every query with at least one schedulable
    // operator that this decision did not launch gets a causal edge tying
    // its wait to the decision (and the policy's predicted score for what
    // it chose instead). The set was collected by the CandidateSetString
    // walk above — no second plan scan.
    obs::TraceEdge e;
    e.time = ctx.now();
    e.kind = obs::TraceEdgeKind::kConsideredSkipped;
    e.a = decision_id;
    e.b = chosen_query;
    e.value = predicted_score;
    for (const QueryId qid : considered_scratch_) {
      if (qid == chosen_query) continue;
      AddTraceEdge(qid, e);
    }
    // Fairness redirections / injections announced by the serving policy's
    // FilterDecision, which ran immediately before on this same thread.
    for (size_t i = 0; i < num_actions; ++i) {
      const obs::ServingAction& a = actions[i];
      obs::TraceEdge e;
      e.time = ctx.now();
      if (a.kind == obs::ServingAction::kRedirect) {
        e.kind = obs::TraceEdgeKind::kRedirected;
        e.a = a.other;
        AddTraceEdge(a.query, e);
        obs::TraceEdge w;
        w.time = ctx.now();
        w.kind = obs::TraceEdgeKind::kInjected;
        w.a = a.query;
        w.value = 2.0;
        AddTraceEdge(a.other, w);
      } else {
        e.kind = obs::TraceEdgeKind::kInjected;
        e.a = a.other;
        e.value = a.kind == obs::ServingAction::kInjectPriority ? 1.0 : 2.0;
        AddTraceEdge(a.query, e);
      }
    }
  }
#endif
  return decision_id;
}

void EpisodeRecorder::OnPipelineLaunched(int64_t decision_id, QueryId query,
                                         int root_op, int degree,
                                         int64_t planned_work_orders,
                                         double now) {
  ++result_.num_actions;
  result_.num_work_orders_planned += planned_work_orders;
  if (QueryTimeline* t = TimelineFor(query, now)) {
    if (!t->finished) {
      AdvanceTimeline(*t, now);
      t->launched = true;  // admission wait ends at the first launch
    }
  }
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = now;
    e.kind = obs::TraceEdgeKind::kScheduled;
    e.a = decision_id;
    e.b = root_op;
    e.value = static_cast<double>(degree);
    AddTraceEdge(query, e);
  }
#endif

  if (!obs::Enabled()) return;
  ++local_actions_;
  lh_pipeline_degree_.Observe(static_cast<double>(degree));
  obs::DecisionLog::Global().AddPipeline(decision_id, planned_work_orders);
  if (virtual_time_) {
    RecordVirtualSpan(SimSpanKind::kPipelineLaunch, now * 1e6, -1.0f,
                      obs::ThreadId(), static_cast<uint32_t>(query), root_op);
  } else {
    obs::TraceEvent e;
    e.name = "sched.pipeline_launch";
    e.category = "sched";
    e.ts_us = obs::NowMicros();
    e.tid = obs::ThreadId();
    e.arg1_name = "query";
    e.arg1 = static_cast<int64_t>(query);
    e.arg2_name = "root_op";
    e.arg2 = root_op;
    obs::Tracer::Global().RecordSpan(e);
  }
}

void EpisodeRecorder::OnWorkOrderDispatched(QueryId query, bool retry,
                                            int inflight_now,
                                            double queue_wait_seconds,
                                            double now) {
  ++result_.num_work_orders_dispatched;
  result_.max_inflight_work_orders =
      std::max(result_.max_inflight_work_orders, inflight_now);
  if (QueryTimeline* t = TimelineFor(query, now)) {
    if (!t->finished) {
      AdvanceTimeline(*t, now);
      ++t->inflight;
      ++t->breakdown.dispatches;
      if (retry && t->retries_pending > 0) --t->retries_pending;
    }
  }

  if (!obs::Enabled()) return;
  ++local_dispatched_;
  lh_queue_wait_seconds_.Observe(std::max(0.0, queue_wait_seconds));
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = now;
    e.kind = obs::TraceEdgeKind::kDispatch;
    e.value = retry ? 1.0 : 0.0;
    AddTraceEdge(query, e);
  }
#endif
}

void EpisodeRecorder::OnWorkOrderCompleted(QueryId query, int64_t decision_id,
                                           double seconds, double now) {
  ++result_.num_work_orders_completed;
  if (QueryTimeline* t = TimelineFor(query, now)) {
    if (!t->finished) {
      AdvanceTimeline(*t, now);
      if (t->inflight > 0) --t->inflight;
    }
  }
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = now;
    e.kind = obs::TraceEdgeKind::kComplete;
    e.value = seconds;
    AddTraceEdge(query, e);
  }
#endif

  if (!obs::Enabled()) return;
  ++local_completed_;
  lh_work_order_seconds_.Observe(seconds);
  if (decision_id >= 0) {
    // Coordinator-local accumulation; flushed to the decision log (one
    // mutex acquisition per decision, not per work order) in Finalize.
    if (realized_base_ < 0) realized_base_ = decision_id;
    if (decision_id < realized_base_) {
      obs::DecisionLog::Global().AddRealized(decision_id, seconds);
    } else {
      const size_t idx = static_cast<size_t>(decision_id - realized_base_);
      if (idx >= realized_seconds_.size()) {
        realized_seconds_.resize(idx + 1, 0.0);
      }
      realized_seconds_[idx] += seconds;
    }
  }
}

void EpisodeRecorder::OnWorkOrderFailed(QueryId query, double now) {
  ++result_.num_work_orders_failed;
  if (QueryTimeline* t = TimelineFor(query, now)) {
    if (!t->finished) {
      AdvanceTimeline(*t, now);
      if (t->inflight > 0) --t->inflight;
    }
  }
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = now;
    e.kind = obs::TraceEdgeKind::kFailed;
    AddTraceEdge(query, e);
  }
#endif
}

void EpisodeRecorder::OnWorkOrderRetried(QueryId query, double now) {
  ++result_.num_retries;
  if (QueryTimeline* t = TimelineFor(query, now)) {
    if (!t->finished) {
      AdvanceTimeline(*t, now);
      ++t->retries_pending;
      ++t->breakdown.retries;
    }
  }
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    obs::TraceEdge e;
    e.time = now;
    e.kind = obs::TraceEdgeKind::kRetry;
    AddTraceEdge(query, e);
  }
#endif
  if (obs::Enabled()) ++local_retries_;
}

void EpisodeRecorder::OnWorkOrderDiscarded() {
  ++result_.num_work_orders_discarded;
}

void EpisodeRecorder::OnWorkOrderExpired() {
  ++result_.num_work_orders_expired;
}

double EpisodeRecorder::OnQueryCompleted(QueryState* query, double now) {
  query->TransitionTo(QueryStatus::kDone);
  FinishTimeline(query, now);
  const QueryId qid = query->id();
  if (qid >= 0 &&
      static_cast<size_t>(qid) < result_.final_statuses.size()) {
    result_.final_statuses[static_cast<size_t>(qid)] = QueryStatus::kDone;
  }
  query->set_completion_time(now);
  const double latency = now - query->arrival_time();
  result_.query_arrivals.push_back(query->arrival_time());
  result_.query_completions.push_back(now);
  result_.query_latencies.push_back(latency);
  if (scheduler_ != nullptr) scheduler_->OnQueryCompleted(query->id(), latency);

  if (obs::Enabled()) {
    ++local_queries_completed_;
    lh_query_latency_seconds_.Observe(latency);
    if (virtual_time_) {
      RecordVirtualSpan(SimSpanKind::kQueryCompleted, now * 1e6, -1.0f,
                        obs::ThreadId(),
                        static_cast<uint32_t>(query->id()));
    } else {
      obs::TraceEvent e;
      e.name = "engine.query_completed";
      e.category = "engine";
      e.ts_us = obs::NowMicros();
      e.tid = obs::ThreadId();
      e.arg1_name = "query";
      e.arg1 = static_cast<int64_t>(query->id());
      obs::Tracer::Global().RecordSpan(e);
    }
  }
  return latency;
}

void EpisodeRecorder::OnQueryTerminated(QueryState* query, double now,
                                        int64_t dropped_work_orders) {
  FinishTimeline(query, now);
  const QueryStatus status = query->status();
  const QueryId qid = query->id();
  if (qid >= 0 &&
      static_cast<size_t>(qid) < result_.final_statuses.size()) {
    result_.final_statuses[static_cast<size_t>(qid)] = status;
  }
  result_.num_work_orders_dropped += dropped_work_orders;
  if (status == QueryStatus::kCancelled) ++result_.num_queries_cancelled;
  if (status == QueryStatus::kFailed) ++result_.num_queries_failed;
  if (status == QueryStatus::kShed) ++result_.num_queries_shed;

  if (!obs::Enabled()) return;
  if (status == QueryStatus::kCancelled) ++local_cancels_;
  if (status == QueryStatus::kFailed) ++local_query_failures_;
  if (status == QueryStatus::kShed) ++local_sheds_;
  if (virtual_time_) {
    RecordVirtualSpan(SimSpanKind::kQueryTerminated, now * 1e6, -1.0f,
                      obs::ThreadId(), static_cast<uint32_t>(qid),
                      static_cast<int32_t>(status));
  } else {
    obs::TraceEvent e;
    e.name = "engine.query_terminated";
    e.category = "engine";
    e.ts_us = obs::NowMicros();
    e.tid = obs::ThreadId();
    e.arg1_name = "query";
    e.arg1 = static_cast<int64_t>(qid);
    e.arg2_name = "status";
    e.arg2 = static_cast<int64_t>(status);
    obs::Tracer::Global().RecordSpan(e);
  }
}

int64_t EpisodeRecorder::OnFallback(double now, const SchedulingContext& ctx,
                                    QueryId chosen) {
  ++result_.num_fallback_decisions;

  if (!obs::Enabled()) return -1;
  ++local_fallbacks_;
  obs::DecisionRecord rec;
  rec.time = now;
  rec.engine = engine_name_;
  rec.event = "fallback";
  rec.policy = scheduler_ != nullptr ? scheduler_->name() : "";
  rec.fallback = true;
  if (chosen >= 0) {
    rec.chosen_query = chosen;
    if (const QueryState* q = ctx.FindQuery(chosen)) {
      rec.tenant = q->tag().tenant;
    }
  }
  const int64_t decision_id = obs::DecisionLog::Global().Add(std::move(rec));
#if LSCHED_OBS_ENABLED
  if (trace_on_) {
    for (const QueryState* q : ctx.queries()) {
      if (q->id() == chosen) continue;
      const int ops = static_cast<int>(q->plan().num_nodes());
      bool schedulable = false;
      for (int op = 0; op < ops; ++op) {
        if (q->IsOpSchedulable(op)) {
          schedulable = true;
          break;
        }
      }
      if (!schedulable) continue;
      obs::TraceEdge e;
      e.time = now;
      e.kind = obs::TraceEdgeKind::kFallback;
      e.a = decision_id;
      e.b = chosen;
      AddTraceEdge(q->id(), e);
    }
  }
#endif
  return decision_id;
}

void EpisodeRecorder::OnWorkerStates(
    std::vector<prof::WorkerStateBuckets> buckets) {
  result_.worker_states = std::move(buckets);
  int64_t dispatch_ns = 0;
  int64_t wall_ns = 0;
  for (const prof::WorkerStateBuckets& b : result_.worker_states) {
    dispatch_ns += b.ns[static_cast<int>(prof::WorkerState::kDispatch)];
    wall_ns += b.wall_ns;
  }
  const double sched_seconds = result_.scheduler_wall_seconds;
  const double denom = sched_seconds + static_cast<double>(wall_ns) * 1e-9;
  result_.sched_overhead_fraction =
      denom > 0.0
          ? (sched_seconds + static_cast<double>(dispatch_ns) * 1e-9) / denom
          : 0.0;
  if (!obs::Enabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  while (worker_gauges_.size() < result_.worker_states.size()) {
    const size_t i = worker_gauges_.size();
    std::array<obs::Gauge*, prof::kNumWorkerStates> gauges{};
    for (int s = 0; s < prof::kNumWorkerStates; ++s) {
      char name[64];
      std::snprintf(name, sizeof(name), "exec.worker%zu.%s_seconds", i,
                    prof::WorkerStateName(static_cast<prof::WorkerState>(s)));
      gauges[static_cast<size_t>(s)] = reg.GetGauge(name);
    }
    worker_gauges_.push_back(gauges);
  }
  for (size_t i = 0; i < result_.worker_states.size(); ++i) {
    const prof::WorkerStateBuckets& b = result_.worker_states[i];
    for (int s = 0; s < prof::kNumWorkerStates; ++s) {
      worker_gauges_[i][static_cast<size_t>(s)]->Set(
          static_cast<double>(b.ns[s]) * 1e-9);
    }
  }
  sched_overhead_fraction_->Set(result_.sched_overhead_fraction);
}

void EpisodeRecorder::FlushWindow() {
  if (obs::Enabled()) {
    invocations_->Add(local_invocations_);
    actions_->Add(local_actions_);
    fallbacks_->Add(local_fallbacks_);
    work_orders_dispatched_->Add(local_dispatched_);
    work_orders_completed_->Add(local_completed_);
    queries_completed_->Add(local_queries_completed_);
    cancel_total_->Add(local_cancels_);
    retry_total_->Add(local_retries_);
    fail_total_->Add(local_query_failures_);
    shed_total_->Add(local_sheds_);
    if (result_.max_inflight_work_orders > flushed_inflight_high_water_) {
      inflight_high_water_->Set(
          static_cast<double>(result_.max_inflight_work_orders));
      flushed_inflight_high_water_ = result_.max_inflight_work_orders;
    }
    decision_seconds_->MergeSnapshot(lh_decision_seconds_.snap);
    pipeline_degree_->MergeSnapshot(lh_pipeline_degree_.snap);
    queue_wait_seconds_->MergeSnapshot(lh_queue_wait_seconds_.snap);
    work_order_seconds_->MergeSnapshot(lh_work_order_seconds_.snap);
    query_latency_seconds_->MergeSnapshot(lh_query_latency_seconds_.snap);
    // Realized per-decision costs flow into the decision log here, which
    // notifies its back-fill observer — so an attached DriftMonitor keeps
    // scoring mid-stream without waiting for an episode end.
    for (size_t i = 0; i < realized_seconds_.size(); ++i) {
      if (realized_seconds_[i] != 0.0) {
        obs::DecisionLog::Global().AddRealized(
            realized_base_ + static_cast<int64_t>(i), realized_seconds_[i]);
      }
    }
    if (vs_total_ > 0) {
      // Expand the surviving compact records into full TraceEvents in
      // chronological order (oldest surviving entry first when the local
      // ring wrapped) and hand them to the tracer in one batch, charging
      // the ring's own drops so Tracer::dropped_events() stays truthful.
      const size_t size = virtual_spans_.size();
      const size_t n =
          static_cast<size_t>(std::min<uint64_t>(vs_total_, size));
      const size_t start = vs_total_ > size ? vs_next_ : 0;
      flush_scratch_.clear();
      flush_scratch_.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        size_t idx = start + i;
        if (idx >= size) idx -= size;
        const CompactSpan& c = virtual_spans_[idx];
        const SpanMeta& m = kSpanMeta[static_cast<size_t>(c.kind)];
        obs::TraceEvent e;
        e.name = m.name;
        e.category = m.category;
        e.ts_us = c.ts_us;
        e.dur_us = c.dur_us < 0.0f ? -1.0 : static_cast<double>(c.dur_us);
        e.tid = c.tid;
        e.arg1_name = m.arg1_name;
        e.arg1 = c.query;
        e.arg2_name = m.arg2_name;
        e.arg2 = c.arg2;
        flush_scratch_.push_back(e);
      }
      obs::Tracer::Global().RecordSpans(flush_scratch_.data(), n, vs_total_);
    }
  }
  local_invocations_ = 0;
  local_actions_ = 0;
  local_fallbacks_ = 0;
  local_dispatched_ = 0;
  local_completed_ = 0;
  local_queries_completed_ = 0;
  local_cancels_ = 0;
  local_retries_ = 0;
  local_query_failures_ = 0;
  local_sheds_ = 0;
  lh_decision_seconds_.Reset();
  lh_pipeline_degree_.Reset();
  lh_queue_wait_seconds_.Reset();
  lh_work_order_seconds_.Reset();
  lh_query_latency_seconds_.Reset();
  realized_base_ = -1;
  realized_seconds_.clear();
  vs_next_ = 0;
  vs_total_ = 0;
}

EpisodeResult EpisodeRecorder::SnapshotResult(double now) const {
  EpisodeResult snap = result_;
  snap.avg_latency = Mean(snap.query_latencies);
  snap.p90_latency = Percentile(snap.query_latencies, 90.0);
  snap.makespan = now;
  return snap;
}

void EpisodeRecorder::Finalize(double makespan) {
  result_.avg_latency = Mean(result_.query_latencies);
  result_.p90_latency = Percentile(result_.query_latencies, 90.0);
  result_.makespan = makespan;
  FlushWindow();
}

}  // namespace lsched

#include "exec/scheduler.h"

#include "exec/scheduling_context.h"
#include "util/logging.h"

namespace lsched {

// Each default bridges to the other overload, so a policy only has to
// override one. The depth counter catches subclasses that override
// neither (the bridges would otherwise recurse forever).

SchedulingDecision Scheduler::Schedule(const SchedulingEvent& event,
                                       const SchedulingContext& ctx) {
  LSCHED_CHECK(bridge_depth_ < 2)
      << "Scheduler subclass '" << name()
      << "' overrides neither Schedule() overload";
  ++bridge_depth_;
  const SystemState state = ctx.MaterializeSnapshot();
  SchedulingDecision decision = Schedule(event, state);
  --bridge_depth_;
  return decision;
}

SchedulingDecision Scheduler::Schedule(const SchedulingEvent& event,
                                       const SystemState& state) {
  LSCHED_CHECK(bridge_depth_ < 2)
      << "Scheduler subclass '" << name()
      << "' overrides neither Schedule() overload";
  ++bridge_depth_;
  SchedulingDecision decision =
      Schedule(event, SchedulingContext::FromSnapshot(state));
  --bridge_depth_;
  return decision;
}

}  // namespace lsched

#include "exec/worklist.h"

#include <cstdlib>

#include "util/logging.h"

namespace lsched {

const char* WorklistKindName(WorklistKind kind) {
  switch (kind) {
    case WorklistKind::kLocking:
      return "locking";
    case WorklistKind::kAtomic:
      return "atomic";
  }
  return "unknown";
}

bool ParseWorklistKind(const std::string& name, WorklistKind* out) {
  if (name == "locking") {
    *out = WorklistKind::kLocking;
    return true;
  }
  if (name == "atomic") {
    *out = WorklistKind::kAtomic;
    return true;
  }
  return false;
}

WorklistKind WorklistKindFromEnv(WorklistKind fallback) {
  const char* env = std::getenv("LSCHED_WORKLIST");
  if (env == nullptr) return fallback;
  WorklistKind kind;
  if (!ParseWorklistKind(env, &kind)) {
    LSCHED_LOG(Warning) << "unrecognized LSCHED_WORKLIST=" << env
                        << ", using " << WorklistKindName(fallback);
    return fallback;
  }
  return kind;
}

}  // namespace lsched

#ifndef LSCHED_EXEC_KERNELS_H_
#define LSCHED_EXEC_KERNELS_H_

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "plan/query_plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lsched {

/// Producers whose rows stream INTO `op` as its work-order input (as
/// opposed to side inputs consumed via operator state: hash-join build
/// sides, the inner of nested-loop joins, the right of merge joins). A
/// fused pipeline may only extend into `op` from its unique stream
/// producer — fusing from a side input (or from one branch of a multi-input
/// union) would drop the other stream rows.
std::vector<int> StreamProducers(const QueryPlan& plan, int op);

/// The side-input producer of a binary operator (or -1).
int SideProducer(const QueryPlan& plan, int op);

/// Materialized intermediate result: fixed-arity rows of doubles, viewed as
/// chunks of `chunk_rows` rows (the work-order granularity for consumers).
class RowStore {
 public:
  RowStore() = default;
  RowStore(int num_cols, size_t chunk_rows)
      : num_cols_(num_cols), chunk_rows_(chunk_rows) {}

  int num_cols() const { return num_cols_; }
  size_t num_rows() const {
    return num_cols_ == 0 ? 0 : data_.size() / static_cast<size_t>(num_cols_);
  }
  size_t num_chunks() const {
    return chunk_rows_ == 0 ? 0 : (num_rows() + chunk_rows_ - 1) / chunk_rows_;
  }
  size_t chunk_rows() const { return chunk_rows_; }

  void AppendRow(const std::vector<double>& row);
  void AppendRow(const double* row, int n);

  double at(size_t row, int col) const {
    return data_[row * static_cast<size_t>(num_cols_) +
                 static_cast<size_t>(col)];
  }

  /// Copies chunk `idx` (bounded) into `out` as row vectors, reusing the
  /// caller's outer vector and its inner rows' capacity (the worker
  /// scratch path); every surviving element is fully overwritten.
  void ChunkRows(size_t idx, std::vector<std::vector<double>>* out) const;

  size_t ByteSize() const { return data_.size() * sizeof(double); }

 private:
  int num_cols_ = 0;
  size_t chunk_rows_ = 4096;
  std::vector<double> data_;
};

/// Per-worker arena for ExecuteWorkOrder's row buffers. The two
/// vector-of-rows ping-pong between pipeline stages (swap, never
/// reallocate) and persist across work orders, so a worker's steady state
/// reuses both the outer vectors and the inner rows' heap capacity instead
/// of allocating ~chunk_rows fresh row vectors per work order. Owned by
/// exactly one worker thread; never shared.
struct WorkOrderScratch {
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> next;
};

/// Runtime execution state of one query in RealEngine: per-operator shared
/// state (hash tables, aggregation maps, sort runs, ...) plus output stores.
/// Work orders from multiple worker threads may touch the same operator
/// concurrently; all shared state is mutex-protected, mirroring Quickstep's
/// concurrent work-order execution (paper §2).
class QueryExecution {
 public:
  QueryExecution(const Catalog* catalog, const QueryPlan* plan,
                 size_t chunk_rows);

  const QueryPlan& plan() const { return *plan_; }

  /// Number of work orders the root of `chain` generates *now* (source:
  /// base-relation blocks; intermediate: chunks of its completed producer
  /// outputs). RealEngine requires standalone producers to be complete.
  int NumWorkOrders(int op) const;

  /// Executes fused work order `index` of `chain`: one root input block
  /// pushed through every (streaming) stage; stateful tails consume into
  /// their operator state. Thread-safe. `scratch` (optional) supplies
  /// caller-owned row buffers reused across calls; results are identical
  /// with or without it.
  Status ExecuteWorkOrder(const std::vector<int>& chain, int index,
                          WorkOrderScratch* scratch = nullptr);

  /// Called once when `op` finished all work orders: blocking operators
  /// (aggregates, sorts, top-k, ...) emit their buffered results.
  Status FinalizeOperator(int op);

  /// Output rows of `op` (valid once the op is finalized for blocking ops).
  const RowStore& output(int op) const { return *outputs_[op]; }

  /// Approximate bytes of operator state currently held by `op`.
  size_t StateBytes(int op) const;

 private:
  struct OpState {
    // Hash join / index build: key -> row index into build input rows.
    std::unordered_multimap<int64_t, size_t> hash_table;
    std::vector<std::vector<double>> hash_rows;
    // Aggregation: group key -> (accumulator, count).
    std::map<int64_t, std::pair<double, int64_t>> agg;
    // Distinct / intersect membership.
    std::unordered_map<int64_t, int> seen;
    // Sort runs / top-k buffers.
    std::vector<std::vector<double>> buffer;
    int64_t rows_consumed = 0;
    std::mutex mu;
  };

  /// Rows of chunk `index` of the input feeding `op` (source block or
  /// producer-output chunk), resolved across multiple producers.
  Status InputChunk(int op, int index,
                    std::vector<std::vector<double>>* rows) const;

  /// Streams `rows` through operator `op`, appending survivors to `out`.
  /// Stateful operators consume into state and emit nothing until finalize.
  Status ProcessRows(int op, std::vector<std::vector<double>>&& rows,
                     std::vector<std::vector<double>>* out);

  int OutputArity(int op) const;

  const Catalog* catalog_;
  const QueryPlan* plan_;
  size_t chunk_rows_;
  std::vector<std::unique_ptr<OpState>> states_;
  std::vector<std::unique_ptr<RowStore>> outputs_;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_KERNELS_H_

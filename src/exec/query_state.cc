#include "exec/query_state.h"

#include <algorithm>
#include <cmath>

#include "exec/kernels.h"

namespace lsched {

const char* SchedulingEventTypeName(SchedulingEventType t) {
  switch (t) {
    case SchedulingEventType::kQueryArrival:
      return "QueryArrival";
    case SchedulingEventType::kOperatorCompleted:
      return "OperatorCompleted";
    case SchedulingEventType::kThreadIdle:
      return "ThreadIdle";
    case SchedulingEventType::kThreadAdded:
      return "ThreadAdded";
    case SchedulingEventType::kThreadRemoved:
      return "ThreadRemoved";
    case SchedulingEventType::kQueryCancelled:
      return "QueryCancelled";
  }
  return "?";
}

const char* QueryStatusName(QueryStatus s) {
  switch (s) {
    case QueryStatus::kAdmitted:
      return "ADMITTED";
    case QueryStatus::kRunning:
      return "RUNNING";
    case QueryStatus::kDone:
      return "DONE";
    case QueryStatus::kCancelled:
      return "CANCELLED";
    case QueryStatus::kFailed:
      return "FAILED";
    case QueryStatus::kShed:
      return "SHED";
  }
  return "?";
}

const char* QueryPriorityName(QueryPriority p) {
  switch (p) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "?";
}

bool QueryState::TransitionTo(QueryStatus to) {
  if (to == status_) return true;  // idempotent
  bool legal = false;
  switch (status_) {
    case QueryStatus::kAdmitted:
      // RUNNING on first pipeline launch, or straight to any terminal state
      // (cancel-before-start, admission failure, zero-work completion).
      legal = true;
      break;
    case QueryStatus::kRunning:
      // SHED is an admission-time decision only: once work has run the
      // query can complete, be cancelled, or fail, but never be shed.
      legal = IsTerminalStatus(to) && to != QueryStatus::kShed;
      break;
    case QueryStatus::kDone:
    case QueryStatus::kCancelled:
    case QueryStatus::kFailed:
    case QueryStatus::kShed:
      legal = false;  // terminal states absorb
      break;
  }
  if (legal) status_ = to;
  return legal;
}

QueryState::QueryState(QueryId id, QueryPlan plan, double arrival_time,
                       size_t regression_window)
    : id_(id), plan_(std::move(plan)), arrival_time_(arrival_time) {
  ops_.reserve(plan_.num_nodes());
  for (size_t i = 0; i < plan_.num_nodes(); ++i) {
    OpRuntime rt;
    rt.remaining = static_cast<double>(plan_.node(static_cast<int>(i)).num_work_orders);
    rt.dur_reg = WindowedLinearRegression(regression_window);
    rt.mem_reg = WindowedLinearRegression(regression_window);
    ops_.push_back(std::move(rt));
  }
}

bool QueryState::AdvanceOperator(int op, double amount,
                                 double observed_seconds,
                                 double observed_memory) {
  OpRuntime& rt = ops_[op];
  if (rt.completed || amount <= 0.0) return false;
  const double before = rt.remaining;
  rt.remaining = std::max(0.0, rt.remaining - amount);
  const double progressed = before - rt.remaining;
  if (progressed > 0.0) {
    rt.completed_wos += static_cast<int>(std::floor(
        static_cast<double>(plan_.node(op).num_work_orders) - rt.remaining -
        static_cast<double>(rt.completed_wos) + 1e-9));
    // Normalize the observation to a per-work-order sample.
    const double x = static_cast<double>(rt.completed_wos);
    rt.dur_reg.Add(x, observed_seconds / progressed);
    rt.mem_reg.Add(x, observed_memory / std::max(progressed, 1e-9));
  }
  if (rt.remaining <= 1e-9 && !rt.completed) {
    rt.remaining = 0.0;
    rt.completed = true;
    rt.scheduled = false;
    ++completed_ops_;
    return true;
  }
  return false;
}

bool QueryState::IsOpSchedulable(int op) const {
  const OpRuntime& rt = ops_[op];
  if (rt.completed || rt.scheduled) return false;
  for (int e : plan_.node(op).in_edges) {
    const PlanEdge& edge = plan_.edge(e);
    const OpRuntime& prod = ops_[edge.producer];
    if (edge.pipeline_breaking) {
      if (!prod.completed) return false;
    } else {
      if (!prod.completed && !prod.scheduled) return false;
    }
  }
  return true;
}

std::vector<int> QueryState::SchedulableOps() const {
  std::vector<int> out;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (IsOpSchedulable(static_cast<int>(i))) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> QueryState::ValidPipelineFrom(int root) const {
  std::vector<int> chain = {root};
  int current = root;
  while (true) {
    int next = -1;
    double best_cost = -1.0;
    for (int e : plan_.node(current).out_edges) {
      const PlanEdge& edge = plan_.edge(e);
      if (edge.pipeline_breaking) continue;
      const int cand = edge.consumer;
      const OpRuntime& rt = ops_[cand];
      if (rt.completed || rt.scheduled) continue;
      // All *other* producers of the candidate must be completed (its input
      // from `current` streams through the pipeline).
      bool ok = true;
      for (int e2 : plan_.node(cand).in_edges) {
        const PlanEdge& other = plan_.edge(e2);
        if (other.producer == current) continue;
        if (!ops_[other.producer].completed) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      // A fused work order pushes only `current`'s chunks through the
      // candidate, so `current` must be its ONE stream input. Fusing from a
      // side input (hash-build, merge/NLJ inner, intersect side) or from
      // one branch of a multi-input union would silently drop the rows of
      // the other stream producers when the pipeline completes.
      const std::vector<int> stream = StreamProducers(plan_, cand);
      if (stream.size() != 1 || stream[0] != current) continue;
      const double cost =
          static_cast<double>(plan_.node(cand).num_work_orders) *
          plan_.node(cand).est_cost_per_wo;
      if (cost > best_cost) {
        best_cost = cost;
        next = cand;
      }
    }
    if (next < 0) break;
    chain.push_back(next);
    current = next;
  }
  return chain;
}

double QueryState::EstimateNextWorkOrderSeconds(int op) const {
  const OpRuntime& rt = ops_[op];
  if (rt.dur_reg.empty()) return plan_.node(op).est_cost_per_wo;
  const double pred =
      rt.dur_reg.Predict(static_cast<double>(rt.completed_wos + 1));
  return pred > 0.0 ? pred : plan_.node(op).est_cost_per_wo;
}

double QueryState::EstimateNextWorkOrderMemory(int op) const {
  const OpRuntime& rt = ops_[op];
  if (rt.mem_reg.empty()) return plan_.node(op).est_mem_per_wo;
  const double pred =
      rt.mem_reg.Predict(static_cast<double>(rt.completed_wos + 1));
  return pred > 0.0 ? pred : plan_.node(op).est_mem_per_wo;
}

double QueryState::EstimateRemainingSeconds(int op) const {
  return EstimateNextWorkOrderSeconds(op) * ops_[op].remaining;
}

double QueryState::EstimateRemainingMemory(int op) const {
  return EstimateNextWorkOrderMemory(op) * ops_[op].remaining;
}

double QueryState::EstimateQueryRemainingSeconds() const {
  double total = 0.0;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (!ops_[i].completed) {
      total += EstimateRemainingSeconds(static_cast<int>(i));
    }
  }
  return total;
}

}  // namespace lsched

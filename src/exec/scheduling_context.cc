#include "exec/scheduling_context.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace lsched {

namespace {

/// Process-global version source. Atomic (relaxed) so contexts on
/// different engine threads — and bridge contexts built mid-episode —
/// never hand out the same version twice.
uint64_t NextVersion() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

void SchedulingContext::Reset(double now) {
  now_ = now;
  queries_.clear();
  query_index_.clear();
  query_versions_.clear();
  threads_.clear();
  thread_index_.clear();
  free_threads_ = 0;
}

void SchedulingContext::AddQuery(QueryState* q) {
  LSCHED_CHECK(q != nullptr);
  LSCHED_CHECK(query_index_.find(q->id()) == query_index_.end())
      << "duplicate query id " << q->id();
  // Insert sorted by id so iteration order matches the legacy snapshot
  // (workload-index) order even with out-of-order arrivals.
  auto pos = std::lower_bound(
      queries_.begin(), queries_.end(), q,
      [](const QueryState* a, const QueryState* b) {
        return a->id() < b->id();
      });
  const size_t idx = static_cast<size_t>(pos - queries_.begin());
  queries_.insert(pos, q);
  RebuildQueryIndex(idx);
  query_versions_[q->id()] = NextVersion();
}

void SchedulingContext::RemoveQuery(QueryId id) {
  auto it = query_index_.find(id);
  if (it == query_index_.end()) return;
  const size_t idx = it->second;
  queries_.erase(queries_.begin() + static_cast<std::ptrdiff_t>(idx));
  query_index_.erase(it);
  query_versions_.erase(id);
  RebuildQueryIndex(idx);
}

void SchedulingContext::MarkQueryDirty(QueryId id) {
  auto it = query_versions_.find(id);
  if (it == query_versions_.end()) return;
  it->second = NextVersion();
}

void SchedulingContext::AddThread(const ThreadInfo& t) {
  LSCHED_CHECK(thread_index_.find(t.id) == thread_index_.end())
      << "duplicate thread id " << t.id;
  thread_index_[t.id] = threads_.size();
  threads_.push_back(t);
  if (!t.busy) ++free_threads_;
}

void SchedulingContext::RetireThread(int thread_id) {
  const size_t idx = ThreadIndexOrDie(thread_id);
  if (!threads_[idx].busy) --free_threads_;
  threads_.erase(threads_.begin() + static_cast<std::ptrdiff_t>(idx));
  thread_index_.erase(thread_id);
  for (size_t i = idx; i < threads_.size(); ++i) {
    thread_index_[threads_[i].id] = i;
  }
}

void SchedulingContext::SetThreadBusy(int thread_id, QueryId query) {
  ThreadInfo& t = threads_[ThreadIndexOrDie(thread_id)];
  LSCHED_CHECK(!t.busy) << "thread " << thread_id << " already busy";
  t.busy = true;
  t.running_query = query;
  // last_query intentionally unchanged until SetThreadIdle: while busy it
  // still names the *previous* query (locality features depend on this).
  --free_threads_;
}

void SchedulingContext::SetThreadIdle(int thread_id, QueryId last_query) {
  ThreadInfo& t = threads_[ThreadIndexOrDie(thread_id)];
  LSCHED_CHECK(t.busy) << "thread " << thread_id << " already idle";
  t.busy = false;
  t.running_query = kInvalidQuery;
  t.last_query = last_query;
  ++free_threads_;
}

QueryState* SchedulingContext::FindQuery(QueryId id) const {
  auto it = query_index_.find(id);
  return it == query_index_.end() ? nullptr : queries_[it->second];
}

uint64_t SchedulingContext::query_version(QueryId id) const {
  auto it = query_versions_.find(id);
  return it == query_versions_.end() ? 0 : it->second;
}

const ThreadInfo* SchedulingContext::thread(int thread_id) const {
  auto it = thread_index_.find(thread_id);
  return it == thread_index_.end() ? nullptr : &threads_[it->second];
}

bool SchedulingContext::AnySchedulableOp() const {
  for (const QueryState* q : queries_) {
    const int n = q->plan().num_nodes();
    for (int op = 0; op < n; ++op) {
      if (q->IsOpSchedulable(op)) return true;
    }
  }
  return false;
}

SystemState SchedulingContext::MaterializeSnapshot() const {
  SystemState state;
  state.now = now_;
  state.queries = queries_;
  state.threads = threads_;
  return state;
}

SchedulingContext SchedulingContext::FromSnapshot(const SystemState& state) {
  SchedulingContext ctx;
  ctx.now_ = state.now;
  // Preserve the snapshot's order verbatim: bridge contexts must look
  // exactly like the snapshot a v1 policy would have seen.
  ctx.queries_ = state.queries;
  for (size_t i = 0; i < ctx.queries_.size(); ++i) {
    const QueryId id = ctx.queries_[i]->id();
    ctx.query_index_[id] = i;
    ctx.query_versions_[id] = NextVersion();
  }
  for (const ThreadInfo& t : state.threads) {
    ctx.thread_index_[t.id] = ctx.threads_.size();
    ctx.threads_.push_back(t);
    if (!t.busy) ++ctx.free_threads_;
  }
  return ctx;
}

size_t SchedulingContext::ThreadIndexOrDie(int thread_id) const {
  auto it = thread_index_.find(thread_id);
  LSCHED_CHECK(it != thread_index_.end())
      << "unknown thread id " << thread_id;
  return it->second;
}

void SchedulingContext::RebuildQueryIndex(size_t from) {
  for (size_t i = from; i < queries_.size(); ++i) {
    query_index_[queries_[i]->id()] = i;
  }
}

}  // namespace lsched

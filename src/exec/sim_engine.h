#ifndef LSCHED_EXEC_SIM_ENGINE_H_
#define LSCHED_EXEC_SIM_ENGINE_H_

#include <memory>
#include <queue>
#include <vector>

#include "exec/exec_types.h"
#include "exec/query_state.h"
#include "exec/scheduler.h"
#include "plan/cost_model.h"
#include "util/rng.h"

namespace lsched {

/// One query to run: its physical plan and its (virtual-time) arrival.
struct QuerySubmission {
  QueryPlan plan;
  double arrival_time = 0.0;
};

/// Telemetry from one workload execution ("episode" during training).
struct EpisodeResult {
  std::vector<double> query_latencies;  ///< completion - arrival, per query
  double avg_latency = 0.0;
  double p90_latency = 0.0;
  double makespan = 0.0;  ///< completion of last query (virtual seconds)

  int num_scheduler_invocations = 0;
  int num_actions = 0;  ///< pipelines launched by the scheduler (Fig. 13b)
  int num_fallback_decisions = 0;
  double scheduler_wall_seconds = 0.0;  ///< real time inside Schedule()

  /// --- invariant-check telemetry (consumed by src/testing) --------------
  /// Per-query arrival/completion times, in query-completion order (the
  /// same order as `query_latencies`, so latency[i] must equal
  /// completions[i] - arrivals[i]).
  std::vector<double> query_arrivals;
  std::vector<double> query_completions;
  /// Work-order conservation: every fused work order a launched pipeline
  /// plans must be dispatched to a thread exactly once and complete exactly
  /// once (planned == dispatched == completed at end of run).
  int64_t num_work_orders_planned = 0;
  int64_t num_work_orders_dispatched = 0;
  int64_t num_work_orders_completed = 0;
  /// High-water mark of concurrently in-flight work orders; must never
  /// exceed the worker-pool size (no thread double-assignment).
  int max_inflight_work_orders = 0;

  /// (time, #running queries) at each scheduler invocation — the raw series
  /// from which the reward H_d = (t_d - t_{d-1}) * Q_d is computed (§6).
  struct DecisionRecord {
    double time = 0.0;
    int running_queries = 0;
  };
  std::vector<DecisionRecord> decisions;
};

/// A scheduled change to the worker pool size (paper §5.1: "the worker
/// threads pool can shrink or grow dynamically during execution"; §5.2
/// events (1)). Positive delta adds threads; negative removes idle threads
/// (busy ones retire when their current work order completes).
struct ThreadPoolEvent {
  double time = 0.0;
  int delta = 0;
};

struct SimEngineConfig {
  int num_threads = 60;
  std::vector<ThreadPoolEvent> thread_events;
  CostModelParams cost_params;
  uint64_t seed = 7;
  size_t regression_window = 32;
  /// Safety valve: abort (with whatever completed) past this virtual time.
  double max_virtual_seconds = 1e9;
  /// Max scheduler re-invocations per event while it keeps scheduling.
  int max_rounds_per_event = 128;
};

/// Discrete-event simulator of the work-order execution model (paper §5.1):
/// a scheduler thread plus a pool of worker threads, each executing fused
/// pipeline work orders whose durations come from the cost model (plus
/// noise, locality gain, and memory-thrashing penalties). It triggers the
/// Scheduler exactly on the events of §5.2 and applies its decisions.
///
/// This is the substrate used for RL training and all large benchmark
/// sweeps; RealEngine executes the same decisions on real blocks.
class SimEngine {
 public:
  explicit SimEngine(SimEngineConfig config);

  /// Runs `workload` to completion under `scheduler` and returns telemetry.
  EpisodeResult Run(const std::vector<QuerySubmission>& workload,
                    Scheduler* scheduler);

  const SimEngineConfig& config() const { return config_; }

 private:
  struct ActivePipeline {
    QueryId query = kInvalidQuery;
    std::vector<int> chain;
    int total_fused = 0;
    int dispatched = 0;
    int inflight = 0;
    double est_seconds_per_fused = 0.0;
    double memory = 0.0;
  };

  struct SimThread {
    ThreadInfo info;
    // In-flight work order.
    int pipeline_index = -1;  ///< index into active_pipelines_
    double busy_until = 0.0;
    bool retired = false;  ///< removed from the pool (skipped everywhere)
  };

  struct SimEvent {
    double time = 0.0;
    int64_t seq = 0;  ///< FIFO tiebreak
    enum Kind { kArrival, kWorkOrderDone, kPoolChange } kind = kArrival;
    int payload = 0;  ///< arrival: workload index; done: thread id
    bool operator>(const SimEvent& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // --- helpers used by Run ------------------------------------------------
  void ResetRunState();
  SystemState SnapshotState(double now);
  bool AnySchedulableOp() const;
  bool AnyPendingFusedWork() const;
  void ApplyDecision(const SchedulingDecision& decision, double now);
  int AssignThreads(double now);  ///< returns #dispatches made
  void DispatchTo(int thread_id, int pipeline_idx, double now);
  void InvokeScheduler(const SchedulingEvent& event, Scheduler* scheduler,
                       double now);
  void ForceFallbackSchedule(double now);

  SimEngineConfig config_;
  CostModel cost_model_;

  // Per-run state.
  Rng rng_{0};
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::vector<SimThread> threads_;
  std::vector<ActivePipeline> active_pipelines_;
  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<SimEvent>>
      events_;
  int64_t event_seq_ = 0;
  EpisodeResult result_;
  int completed_queries_ = 0;
  int pending_thread_removals_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SIM_ENGINE_H_

#ifndef LSCHED_EXEC_SIM_ENGINE_H_
#define LSCHED_EXEC_SIM_ENGINE_H_

#include <deque>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "exec/episode_recorder.h"
#include "exec/episode_result.h"
#include "exec/exec_types.h"
#include "exec/query_state.h"
#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "exec/serving_hooks.h"
#include "plan/cost_model.h"
#include "util/rng.h"

namespace lsched {

/// One query to run: its physical plan, its (virtual-time) arrival, and its
/// serving metadata (tenant/priority; defaulted for single-tenant runs).
struct QuerySubmission {
  QueryPlan plan;
  double arrival_time = 0.0;
  QueryTag tag;
};

struct SimEngineConfig {
  int num_threads = 60;
  std::vector<ThreadPoolEvent> thread_events;
  CostModelParams cost_params;
  uint64_t seed = 7;
  size_t regression_window = 32;
  /// Safety valve: abort (with whatever completed) past this virtual time.
  double max_virtual_seconds = 1e9;
  /// Max scheduler re-invocations per event while it keeps scheduling.
  int max_rounds_per_event = 128;
  /// Retry/backoff policy for failed work-order attempts (DESIGN.md §10).
  RetryPolicy retry;
  /// Per-work-order deadline in virtual seconds; attempts that would run
  /// longer fail at the deadline instead. 0 = no deadline.
  double work_order_deadline_seconds = 0.0;
  /// Scripted cancellations, applied at their virtual times. A cancel at or
  /// before the query's arrival cancels it on admission.
  std::vector<CancelRequest> cancels;
  /// Serving-layer callbacks (admission control, fairness/priority decision
  /// post-processing, tenant accounting; DESIGN.md §11). Not owned; null =
  /// episode mode, every arrival admitted, decisions applied verbatim.
  ServingHooks* hooks = nullptr;
};

/// Discrete-event simulator of the work-order execution model (paper §5.1):
/// a scheduler thread plus a pool of worker threads, each executing fused
/// pipeline work orders whose durations come from the cost model (plus
/// noise, locality gain, and memory-thrashing penalties). It triggers the
/// Scheduler exactly on the events of §5.2 and applies its decisions.
///
/// Scheduling state (live queries, thread occupancy, free-thread count,
/// per-query change versions) lives in an incremental SchedulingContext
/// mutated as events happen — no per-round snapshot rebuilds.
///
/// This is the substrate used for RL training and all large benchmark
/// sweeps; RealEngine executes the same decisions on real blocks.
class SimEngine {
 public:
  explicit SimEngine(SimEngineConfig config);

  /// Runs `workload` to completion under `scheduler` and returns telemetry.
  EpisodeResult Run(const std::vector<QuerySubmission>& workload,
                    Scheduler* scheduler);

  /// Cancels a live query at the current virtual time: marks it CANCELLED,
  /// kills its pipelines (in-flight attempts are discarded when they come
  /// back), and removes it from the scheduling context so policies stop
  /// scoring it. Callable from scheduler callbacks mid-run. Returns false
  /// if the query is unknown or already terminal (double-cancel and
  /// cancel-after-done are no-ops).
  bool CancelQuery(QueryId query);

  const SimEngineConfig& config() const { return config_; }

 private:
  struct ActivePipeline {
    QueryId query = kInvalidQuery;
    std::vector<int> chain;
    int total_fused = 0;
    int dispatched = 0;  ///< attempts handed to threads (incl. retries)
    int inflight = 0;
    int next_wo = 0;     ///< next fresh work-order index to dispatch
    int succeeded = 0;   ///< work orders that completed successfully
    bool dead = false;   ///< query reached a terminal state; stop dispatching
    std::vector<int> retry_ready;  ///< failed work orders awaiting re-dispatch
    std::unordered_map<int, int> attempts;  ///< failed attempts per work order
    double not_before = 0.0;  ///< retry backoff: no dispatch before this time
    double est_seconds_per_fused = 0.0;
    double memory = 0.0;
    double created_at = 0.0;      ///< virtual time the pipeline was launched
    int64_t decision_id = -1;     ///< obs decision-log id that launched it
  };

  /// Sim-local per-thread state; occupancy/locality (busy, running_query,
  /// last_query) lives in the SchedulingContext's ThreadInfo.
  struct SimThread {
    int id = 0;
    // In-flight work order.
    int pipeline_index = -1;  ///< index into active_pipelines_
    int wo_index = -1;        ///< fused work-order index within the pipeline
    bool attempt_failed = false;  ///< injected fault / deadline overrun
    double busy_since = 0.0;
    double busy_until = 0.0;
    bool retired = false;  ///< removed from the pool (skipped everywhere)
  };

  struct SimEvent {
    double time = 0.0;
    int64_t seq = 0;  ///< FIFO tiebreak
    enum Kind {
      kArrival,
      kWorkOrderDone,
      kPoolChange,
      kCancel,      ///< scripted cancellation (payload: config cancel index)
      kRetryReady,  ///< a retry backoff elapsed (payload: pipeline index)
    } kind = kArrival;
    int payload = 0;  ///< arrival: workload index; done: thread id
    bool operator>(const SimEvent& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // --- helpers used by Run ------------------------------------------------
  void ResetRunState();
  bool AnyPendingFusedWork() const;
  void ApplyDecision(const SchedulingDecision& decision, double now);
  int AssignThreads(double now);  ///< returns #dispatches made
  void DispatchTo(int thread_id, int pipeline_idx, double now);
  void InvokeScheduler(const SchedulingEvent& event, Scheduler* scheduler,
                       double now);
  void ForceFallbackSchedule(double now);
  /// Moves a live query to terminal `status` (kCancelled/kFailed, or kShed
  /// for admission-time displacement of a still-ADMITTED query): flips the
  /// state machine, kills its pipelines (accounting dropped work orders),
  /// removes it from the scheduling context. Returns false for
  /// unknown/already-terminal queries.
  bool TerminateQuery(QueryId query, QueryStatus status, double now);

  SimEngineConfig config_;
  CostModel cost_model_;

  // Per-run state.
  Rng rng_{0};
  std::vector<std::unique_ptr<QueryState>> queries_;
  std::vector<SimThread> threads_;
  SchedulingContext ctx_;
  /// Per-thread state accountants (DESIGN.md §8.3), indexed by thread id
  /// like `threads_`. Virtual-clock integer-ns charges, so buckets are
  /// bit-identical across replays. A deque because WorkerAccount holds
  /// atomics (non-movable) and the pool can grow mid-run.
  std::deque<prof::WorkerAccount> accounts_;
  std::vector<ActivePipeline> active_pipelines_;
  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<SimEvent>>
      events_;
  int64_t event_seq_ = 0;
  EpisodeRecorder recorder_;
  /// Decision-log id of the in-flight scheduler/fallback decision; tags
  /// pipelines created by ApplyDecision.
  int64_t current_decision_id_ = -1;
  /// Queries that reached a terminal state (DONE + CANCELLED + FAILED).
  int terminal_queries_ = 0;
  int pending_thread_removals_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SIM_ENGINE_H_

#ifndef LSCHED_EXEC_SCHEDULING_CONTEXT_H_
#define LSCHED_EXEC_SCHEDULING_CONTEXT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/exec_types.h"
#include "exec/query_state.h"
#include "exec/scheduler.h"

namespace lsched {

/// Incremental scheduler-facing view of the execution environment
/// (Scheduler API v2, DESIGN.md §9).
///
/// Unlike SystemState — which engines rebuilt from scratch at every
/// scheduling round — a SchedulingContext lives as long as the episode and
/// is mutated in place as engine events happen:
///
///  * queries are added on arrival and removed on completion; lookup by id
///    is O(1) via a hash index (replaces SystemState::FindQuery's scan),
///  * every query carries a monotonically increasing *version*. The engine
///    bumps it (MarkQueryDirty) exactly when an event changes something a
///    per-query feature encoding could depend on: an operator was scheduled
///    or a work order completed. Policies cache derived per-query state
///    (e.g. encoder embeddings) keyed by (id, version) and recompute only
///    dirty entries,
///  * free-thread accounting is maintained incrementally
///    (SetThreadBusy/SetThreadIdle), so num_free_threads() is O(1).
///
/// Versions are drawn from a process-global atomic counter so that contexts
/// never reuse a version number: a cache keyed by (id, version) stays
/// correct even across Reset() or when bridging from a legacy SystemState.
class SchedulingContext {
 public:
  SchedulingContext() = default;

  // Non-copyable: policies hold caches keyed by this context's versions.
  SchedulingContext(const SchedulingContext&) = delete;
  SchedulingContext& operator=(const SchedulingContext&) = delete;

  /// --- engine-side mutators ---------------------------------------------

  /// Clears all queries and threads for a new episode.
  void Reset(double now = 0.0);

  void set_now(double now) { now_ = now; }

  /// Registers an arrived query. Queries are kept sorted by id so that
  /// iteration order matches the legacy snapshot order (workload index
  /// order) regardless of arrival interleaving. Assigns a fresh version.
  void AddQuery(QueryState* q);

  /// Removes a completed query (order-preserving).
  void RemoveQuery(QueryId id);

  /// Bumps the query's version. Engines call this when an event changed
  /// query-local state that schedulers or feature encoders read: operator
  /// progress (AdvanceOperator), scheduling flags (set_op_scheduled), or
  /// operator completion. Thread-occupancy changes do NOT dirty a query.
  void MarkQueryDirty(QueryId id);

  void AddThread(const ThreadInfo& t);

  /// Removes a thread from the active set (pool shrink).
  void RetireThread(int thread_id);

  /// Marks a thread busy running `query` (decrements the free count).
  void SetThreadBusy(int thread_id, QueryId query);

  /// Marks a thread idle, recording the query it last ran (increments the
  /// free count).
  void SetThreadIdle(int thread_id, QueryId last_query);

  /// --- scheduler-side readers -------------------------------------------

  double now() const { return now_; }

  /// Live queries in id (= workload index) order. Pointers remain valid
  /// until the query is removed.
  const std::vector<QueryState*>& queries() const { return queries_; }

  /// O(1) hash-indexed lookup (replaces SystemState::FindQuery).
  QueryState* FindQuery(QueryId id) const;

  /// True when `id` is present in this context AND not in a terminal
  /// lifecycle state. Engines remove queries on termination, so presence
  /// normally implies liveness; the status check additionally guards
  /// against stale pointers in hand-built contexts (tests, bridges).
  /// Policies must not score or pick dead queries (DESIGN.md §10).
  bool IsQueryLive(QueryId id) const {
    const QueryState* q = FindQuery(id);
    return q != nullptr && !IsTerminalStatus(q->status());
  }

  /// Monotonic per-query change version; 0 if the query is unknown.
  /// Two reads returning the same version guarantee that no dirtying event
  /// happened in between, so any state derived from the query may be
  /// reused.
  uint64_t query_version(QueryId id) const;

  /// Active (non-retired) threads in id order.
  const std::vector<ThreadInfo>& threads() const { return threads_; }

  /// Active thread by id, or nullptr if unknown/retired.
  const ThreadInfo* thread(int thread_id) const;

  int total_threads() const { return static_cast<int>(threads_.size()); }

  /// O(1) — maintained incrementally by SetThreadBusy/SetThreadIdle.
  int num_free_threads() const { return free_threads_; }

  /// True if any live query has a schedulable operator right now.
  bool AnySchedulableOp() const;

  /// --- legacy bridge -----------------------------------------------------

  /// Builds a legacy SystemState view (used by the default Scheduler
  /// bridge so v1-only policies keep working during the migration).
  SystemState MaterializeSnapshot() const;

  /// Builds a context from a legacy snapshot, preserving the snapshot's
  /// query and thread order verbatim. Every query gets a *fresh* global
  /// version, so policy caches keyed by (id, version) safely miss instead
  /// of serving stale entries.
  static SchedulingContext FromSnapshot(const SystemState& state);

 private:
  // Movable only privately (FromSnapshot returns by value via this).
  SchedulingContext(SchedulingContext&&) = default;
  SchedulingContext& operator=(SchedulingContext&&) = default;

  size_t ThreadIndexOrDie(int thread_id) const;
  void RebuildQueryIndex(size_t from);

  double now_ = 0.0;
  std::vector<QueryState*> queries_;
  std::unordered_map<QueryId, size_t> query_index_;
  std::unordered_map<QueryId, uint64_t> query_versions_;
  std::vector<ThreadInfo> threads_;
  std::unordered_map<int, size_t> thread_index_;
  int free_threads_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_EXEC_SCHEDULING_CONTEXT_H_

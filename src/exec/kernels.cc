#include "exec/kernels.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace lsched {

void RowStore::AppendRow(const std::vector<double>& row) {
  AppendRow(row.data(), static_cast<int>(row.size()));
}

void RowStore::AppendRow(const double* row, int n) {
  LSCHED_DCHECK(n == num_cols_) << "row arity mismatch";
  data_.insert(data_.end(), row, row + n);
}

void RowStore::ChunkRows(size_t idx,
                         std::vector<std::vector<double>>* out) const {
  const size_t begin = idx * chunk_rows_;
  const size_t end = std::min(begin + chunk_rows_, num_rows());
  const size_t n = end > begin ? end - begin : 0;
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double>& row = (*out)[i];
    row.resize(static_cast<size_t>(num_cols_));
    for (int c = 0; c < num_cols_; ++c) {
      row[static_cast<size_t>(c)] = at(begin + i, c);
    }
  }
}

std::vector<int> StreamProducers(const QueryPlan& plan, int op) {
  const PlanNode& node = plan.node(op);
  std::vector<int> producers;
  for (int e : node.in_edges) producers.push_back(plan.edge(e).producer);
  switch (node.type) {
    case OperatorType::kProbeHash: {
      std::vector<int> out;
      for (int p : producers) {
        if (plan.node(p).type != OperatorType::kBuildHash) out.push_back(p);
      }
      return out.empty() ? producers : out;
    }
    case OperatorType::kNestedLoopJoin:
    case OperatorType::kMergeJoin:
    case OperatorType::kIntersect:
      // First producer streams; the second is the side input.
      if (producers.size() > 1) producers.resize(1);
      return producers;
    default:
      return producers;
  }
}

int SideProducer(const QueryPlan& plan, int op) {
  const PlanNode& node = plan.node(op);
  std::vector<int> producers;
  for (int e : node.in_edges) producers.push_back(plan.edge(e).producer);
  switch (node.type) {
    case OperatorType::kProbeHash:
      for (int p : producers) {
        if (plan.node(p).type == OperatorType::kBuildHash) return p;
      }
      return producers.size() > 1 ? producers[1] : -1;
    case OperatorType::kNestedLoopJoin:
    case OperatorType::kMergeJoin:
    case OperatorType::kIntersect:
      return producers.size() > 1 ? producers[1] : -1;
    default:
      return -1;
  }
}

namespace {

inline int64_t KeyOf(const std::vector<double>& row, int col) {
  const size_t c =
      col >= 0 && col < static_cast<int>(row.size()) ? static_cast<size_t>(col)
                                                     : 0;
  return static_cast<int64_t>(std::llround(row[c]));
}

void ProjectInto(const std::vector<int>& cols, std::vector<double>* row) {
  if (cols.empty()) return;
  std::vector<double> out;
  out.reserve(cols.size());
  for (int c : cols) {
    out.push_back(c >= 0 && c < static_cast<int>(row->size())
                      ? (*row)[static_cast<size_t>(c)]
                      : 0.0);
  }
  *row = std::move(out);
}

}  // namespace

QueryExecution::QueryExecution(const Catalog* catalog, const QueryPlan* plan,
                               size_t chunk_rows)
    : catalog_(catalog), plan_(plan), chunk_rows_(chunk_rows) {
  states_.reserve(plan->num_nodes());
  outputs_.reserve(plan->num_nodes());
  for (size_t i = 0; i < plan->num_nodes(); ++i) {
    states_.push_back(std::make_unique<OpState>());
    outputs_.push_back(std::make_unique<RowStore>(
        OutputArity(static_cast<int>(i)), chunk_rows_));
  }
}

int QueryExecution::OutputArity(int op) const {
  const PlanNode& node = plan_->node(op);
  auto input_arity = [&]() -> int {
    const std::vector<int> stream = StreamProducers(*plan_, op);
    if (!stream.empty()) return OutputArity(stream[0]);
    if (!node.base_inputs.empty() && catalog_ != nullptr) {
      return static_cast<int>(
          catalog_->relation(node.base_inputs[0]).schema().num_columns());
    }
    return 1;
  };
  switch (node.type) {
    case OperatorType::kSelect:
    case OperatorType::kTableScan:
    case OperatorType::kIndexScan:
    case OperatorType::kProject: {
      if (!node.kernel.project_columns.empty()) {
        return static_cast<int>(node.kernel.project_columns.size());
      }
      return input_arity();
    }
    case OperatorType::kBuildHash:
      return input_arity();  // rows retained in the hash table
    case OperatorType::kProbeHash:
    case OperatorType::kNestedLoopJoin:
    case OperatorType::kMergeJoin: {
      const int side = SideProducer(*plan_, op);
      return input_arity() + (side >= 0 ? OutputArity(side) : 0);
    }
    case OperatorType::kIndexNestedLoopJoin: {
      int side_cols = 1;
      if (node.kernel.index_relation != kInvalidRelation &&
          catalog_ != nullptr) {
        side_cols = static_cast<int>(
            catalog_->relation(node.kernel.index_relation)
                .schema()
                .num_columns());
      }
      return input_arity() + side_cols;
    }
    case OperatorType::kHashAggregate:
    case OperatorType::kSortedAggregate:
    case OperatorType::kFinalizeAggregate:
      return 2;  // (group, aggregate)
    case OperatorType::kWindow:
      return input_arity() + 1;
    default:
      return input_arity();
  }
}

int QueryExecution::NumWorkOrders(int op) const {
  const PlanNode& node = plan_->node(op);
  if (node.in_edges.empty()) {
    if (!node.base_inputs.empty() && catalog_ != nullptr) {
      return std::max<int>(
          1, static_cast<int>(
                 catalog_->relation(node.base_inputs[0]).num_blocks()));
    }
    return 1;
  }
  size_t chunks = 0;
  for (int p : StreamProducers(*plan_, op)) {
    chunks += outputs_[p]->num_chunks();
  }
  return std::max<int>(1, static_cast<int>(chunks));
}

Status QueryExecution::InputChunk(
    int op, int index, std::vector<std::vector<double>>* rows) const {
  const PlanNode& node = plan_->node(op);
  if (node.in_edges.empty()) {
    if (node.base_inputs.empty() || catalog_ == nullptr) {
      rows->clear();
      return Status::FailedPrecondition("source op without base relation");
    }
    const Relation& rel = catalog_->relation(node.base_inputs[0]);
    if (index < 0 || index >= static_cast<int>(rel.num_blocks())) {
      rows->clear();
      return Status::OK();  // past the end: empty chunk
    }
    const Block& block = rel.block(static_cast<size_t>(index));
    // Overwrite-in-place like RowStore::ChunkRows: the caller's inner rows
    // keep their heap capacity across work orders (worker scratch path).
    rows->resize(block.num_rows());
    for (size_t r = 0; r < block.num_rows(); ++r) {
      std::vector<double>& row = (*rows)[r];
      row.resize(block.num_columns());
      for (size_t c = 0; c < block.num_columns(); ++c) {
        row[c] = block.ValueAsDouble(c, r);
      }
    }
    return Status::OK();
  }
  // Concatenated chunk space across stream producers.
  size_t remaining = static_cast<size_t>(index);
  for (int p : StreamProducers(*plan_, op)) {
    const size_t chunks = outputs_[p]->num_chunks();
    if (remaining < chunks) {
      outputs_[p]->ChunkRows(remaining, rows);
      return Status::OK();
    }
    remaining -= chunks;
  }
  rows->clear();
  return Status::OK();  // empty chunk
}

Status QueryExecution::ProcessRows(int op,
                                   std::vector<std::vector<double>>&& rows,
                                   std::vector<std::vector<double>>* out) {
  out->clear();
  const PlanNode& node = plan_->node(op);
  const KernelSpec& k = node.kernel;
  OpState& state = *states_[op];

  switch (node.type) {
    case OperatorType::kTableScan:
    case OperatorType::kUnion:
    case OperatorType::kMaterialize:
    case OperatorType::kCreateTempTable:
      *out = std::move(rows);
      return Status::OK();

    case OperatorType::kSelect:
    case OperatorType::kIndexScan: {
      for (std::vector<double>& row : rows) {
        if (k.filter_column >= 0 &&
            k.filter_column < static_cast<int>(row.size())) {
          const double v = row[static_cast<size_t>(k.filter_column)];
          if (v < k.filter_lo || v > k.filter_hi) continue;
        }
        ProjectInto(k.project_columns, &row);
        out->push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kProject: {
      for (std::vector<double>& row : rows) {
        ProjectInto(k.project_columns, &row);
        out->push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kBuildHash: {
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.build_key);
        state.hash_table.emplace(key, state.hash_rows.size());
        state.hash_rows.push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kProbeHash: {
      const int build = SideProducer(*plan_, op);
      if (build < 0) return Status::FailedPrecondition("probe without build");
      OpState& bstate = *states_[build];
      // The build side is complete before probing starts (the edge is
      // pipeline breaking), so reads need no lock.
      for (const std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.probe_key);
        auto range = bstate.hash_table.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
          std::vector<double> joined = row;
          const std::vector<double>& brow = bstate.hash_rows[it->second];
          joined.insert(joined.end(), brow.begin(), brow.end());
          out->push_back(std::move(joined));
        }
      }
      return Status::OK();
    }

    case OperatorType::kIndexNestedLoopJoin: {
      // Lazily build the index over the base relation on first use.
      {
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.hash_rows.empty() && state.rows_consumed == 0) {
          state.rows_consumed = 1;  // build-once flag
          if (k.index_relation != kInvalidRelation && catalog_ != nullptr) {
            const Relation& rel = catalog_->relation(k.index_relation);
            for (size_t b = 0; b < rel.num_blocks(); ++b) {
              const Block& block = rel.block(b);
              for (size_t r = 0; r < block.num_rows(); ++r) {
                std::vector<double> row(block.num_columns());
                for (size_t c = 0; c < block.num_columns(); ++c) {
                  row[c] = block.ValueAsDouble(c, r);
                }
                const int64_t key = KeyOf(row, k.index_key);
                state.hash_table.emplace(key, state.hash_rows.size());
                state.hash_rows.push_back(std::move(row));
              }
            }
          }
        }
      }
      for (const std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.probe_key);
        auto range = state.hash_table.equal_range(key);
        for (auto it = range.first; it != range.second; ++it) {
          std::vector<double> joined = row;
          const std::vector<double>& irow = state.hash_rows[it->second];
          joined.insert(joined.end(), irow.begin(), irow.end());
          out->push_back(std::move(joined));
        }
      }
      return Status::OK();
    }

    case OperatorType::kNestedLoopJoin: {
      const int inner = SideProducer(*plan_, op);
      if (inner < 0) return Status::FailedPrecondition("nlj without inner");
      const RowStore& irows = *outputs_[inner];
      for (const std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.probe_key);
        for (size_t r = 0; r < irows.num_rows(); ++r) {
          const int ic = k.build_key >= 0 && k.build_key < irows.num_cols()
                             ? k.build_key
                             : 0;
          if (static_cast<int64_t>(std::llround(irows.at(r, ic))) != key) {
            continue;
          }
          std::vector<double> joined = row;
          for (int c = 0; c < irows.num_cols(); ++c) {
            joined.push_back(irows.at(r, c));
          }
          out->push_back(std::move(joined));
        }
      }
      return Status::OK();
    }

    case OperatorType::kMergeJoin: {
      // Right side fully materialized and sorted by its key column; binary
      // search the match range per (sorted) left row.
      const int right = SideProducer(*plan_, op);
      if (right < 0) return Status::FailedPrecondition("mj without right");
      const RowStore& rrows = *outputs_[right];
      const int rc = k.build_key >= 0 && k.build_key < rrows.num_cols()
                         ? k.build_key
                         : 0;
      for (const std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.probe_key);
        // Lower bound over the sorted right store.
        size_t lo = 0, hi = rrows.num_rows();
        while (lo < hi) {
          const size_t mid = (lo + hi) / 2;
          if (static_cast<int64_t>(std::llround(rrows.at(mid, rc))) < key) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        for (size_t r = lo;
             r < rrows.num_rows() &&
             static_cast<int64_t>(std::llround(rrows.at(r, rc))) == key;
             ++r) {
          std::vector<double> joined = row;
          for (int c = 0; c < rrows.num_cols(); ++c) {
            joined.push_back(rrows.at(r, c));
          }
          out->push_back(std::move(joined));
        }
      }
      return Status::OK();
    }

    case OperatorType::kSortRuns:
    case OperatorType::kMergeSortedRuns: {
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        state.buffer.push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kHashAggregate:
    case OperatorType::kSortedAggregate:
    case OperatorType::kFinalizeAggregate: {
      std::lock_guard<std::mutex> lock(state.mu);
      const bool finalize = node.type == OperatorType::kFinalizeAggregate;
      for (const std::vector<double>& row : rows) {
        const int64_t group =
            k.group_by_column >= 0 || finalize
                ? KeyOf(row, finalize ? 0 : k.group_by_column)
                : 0;
        const int vc = finalize ? 1
                       : (k.agg_column >= 0 &&
                          k.agg_column < static_cast<int>(row.size()))
                           ? k.agg_column
                           : static_cast<int>(row.size()) - 1;
        const double v = row[static_cast<size_t>(vc)];
        auto [it, inserted] = state.agg.try_emplace(group, v, 1);
        if (!inserted) {
          switch (k.agg_fn) {
            case AggFn::kSum:
            case AggFn::kAvg:
            case AggFn::kCount:
              it->second.first += v;
              break;
            case AggFn::kMin:
              it->second.first = std::min(it->second.first, v);
              break;
            case AggFn::kMax:
              it->second.first = std::max(it->second.first, v);
              break;
          }
          ++it->second.second;
        }
      }
      return Status::OK();
    }

    case OperatorType::kDistinct: {
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        const int64_t key = KeyOf(row, k.group_by_column);
        if (state.seen.emplace(key, 1).second) {
          out->push_back(std::move(row));
        }
      }
      return Status::OK();
    }

    case OperatorType::kIntersect: {
      const int other = SideProducer(*plan_, op);
      if (other < 0) return Status::FailedPrecondition("intersect arity");
      std::lock_guard<std::mutex> lock(state.mu);
      if (state.seen.empty() && state.rows_consumed == 0) {
        state.rows_consumed = 1;
        const RowStore& orows = *outputs_[other];
        for (size_t r = 0; r < orows.num_rows(); ++r) {
          state.seen.emplace(
              static_cast<int64_t>(std::llround(orows.at(r, 0))), 1);
        }
      }
      for (std::vector<double>& row : rows) {
        if (state.seen.count(KeyOf(row, 0)) > 0) {
          state.buffer.push_back(std::move(row));
        }
      }
      return Status::OK();
    }

    case OperatorType::kTopK: {
      const int64_t limit = k.limit > 0 ? k.limit : 10;
      const int sc = k.sort_column >= 0 ? k.sort_column : 0;
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        state.buffer.push_back(std::move(row));
      }
      std::sort(state.buffer.begin(), state.buffer.end(),
                [sc](const auto& a, const auto& b) {
                  return a[static_cast<size_t>(sc)] >
                         b[static_cast<size_t>(sc)];
                });
      if (state.buffer.size() > static_cast<size_t>(limit)) {
        state.buffer.resize(static_cast<size_t>(limit));
      }
      return Status::OK();
    }

    case OperatorType::kLimit: {
      const int64_t limit = k.limit > 0 ? k.limit : 100;
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        if (state.rows_consumed >= limit) break;
        ++state.rows_consumed;
        out->push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kWindow: {
      std::lock_guard<std::mutex> lock(state.mu);
      for (std::vector<double>& row : rows) {
        state.buffer.push_back(std::move(row));
      }
      return Status::OK();
    }

    case OperatorType::kNumOperatorTypes:
      break;
  }
  return Status::Unimplemented(
      std::string("kernel for ") + OperatorTypeName(node.type));
}

Status QueryExecution::ExecuteWorkOrder(const std::vector<int>& chain,
                                        int index,
                                        WorkOrderScratch* scratch) {
  if (chain.empty()) return Status::InvalidArgument("empty chain");
  WorkOrderScratch local;
  WorkOrderScratch& s = scratch != nullptr ? *scratch : local;
  LSCHED_RETURN_IF_ERROR(InputChunk(chain[0], index, &s.rows));
  for (size_t i = 0; i < chain.size(); ++i) {
    LSCHED_RETURN_IF_ERROR(ProcessRows(chain[i], std::move(s.rows), &s.next));
    // Persist this stage's emissions so out-of-chain consumers can read
    // them later, then stream them into the next stage. The two scratch
    // buffers swap roles each stage, so their heap capacity survives both
    // the stage loop and (via caller-owned scratch) later work orders.
    if (!s.next.empty()) {
      std::lock_guard<std::mutex> lock(states_[chain[i]]->mu);
      for (const std::vector<double>& row : s.next) {
        outputs_[chain[i]]->AppendRow(row);
      }
    }
    s.rows.swap(s.next);
    if (s.rows.empty() && i + 1 < chain.size()) break;
  }
  return Status::OK();
}

Status QueryExecution::FinalizeOperator(int op) {
  const PlanNode& node = plan_->node(op);
  OpState& state = *states_[op];
  std::lock_guard<std::mutex> lock(state.mu);
  switch (node.type) {
    case OperatorType::kSortRuns: {
      // Emit the buffered rows as per-chunk sorted runs.
      const int sc = node.kernel.sort_column >= 0 ? node.kernel.sort_column : 0;
      for (size_t begin = 0; begin < state.buffer.size();
           begin += chunk_rows_) {
        const size_t end = std::min(begin + chunk_rows_, state.buffer.size());
        std::sort(state.buffer.begin() + static_cast<long>(begin),
                  state.buffer.begin() + static_cast<long>(end),
                  [sc](const auto& a, const auto& b) {
                    return a[static_cast<size_t>(sc)] <
                           b[static_cast<size_t>(sc)];
                  });
      }
      for (const auto& row : state.buffer) outputs_[op]->AppendRow(row);
      state.buffer.clear();
      return Status::OK();
    }
    case OperatorType::kMergeSortedRuns: {
      const int sc = node.kernel.sort_column >= 0 ? node.kernel.sort_column : 0;
      std::sort(state.buffer.begin(), state.buffer.end(),
                [sc](const auto& a, const auto& b) {
                  return a[static_cast<size_t>(sc)] <
                         b[static_cast<size_t>(sc)];
                });
      for (const auto& row : state.buffer) outputs_[op]->AppendRow(row);
      state.buffer.clear();
      return Status::OK();
    }
    case OperatorType::kHashAggregate:
    case OperatorType::kSortedAggregate:
    case OperatorType::kFinalizeAggregate: {
      for (const auto& [group, acc] : state.agg) {
        double v = acc.first;
        if (node.kernel.agg_fn == AggFn::kCount) {
          // A partial aggregate counts its input rows; the finalizer SUMS
          // the partial counts it received (acc.first), not its row count.
          v = node.type == OperatorType::kFinalizeAggregate
                  ? acc.first
                  : static_cast<double>(acc.second);
        } else if (node.kernel.agg_fn == AggFn::kAvg &&
                   node.type == OperatorType::kFinalizeAggregate) {
          v = acc.first / static_cast<double>(acc.second);
        }
        outputs_[op]->AppendRow({static_cast<double>(group), v});
      }
      return Status::OK();
    }
    case OperatorType::kTopK:
    case OperatorType::kIntersect: {
      for (const auto& row : state.buffer) outputs_[op]->AppendRow(row);
      state.buffer.clear();
      return Status::OK();
    }
    case OperatorType::kWindow: {
      // Running sum of the agg column per group (a simple window function).
      std::map<int64_t, double> running;
      for (const auto& row : state.buffer) {
        const int64_t g = KeyOf(row, node.kernel.group_by_column);
        const int vc = node.kernel.agg_column >= 0
                           ? node.kernel.agg_column
                           : static_cast<int>(row.size()) - 1;
        running[g] += row[static_cast<size_t>(vc)];
        std::vector<double> out_row = row;
        out_row.push_back(running[g]);
        outputs_[op]->AppendRow(out_row);
      }
      state.buffer.clear();
      return Status::OK();
    }
    default:
      return Status::OK();  // streaming operators already emitted
  }
}

size_t QueryExecution::StateBytes(int op) const {
  // Workers mutate these containers under the op mutex while executing
  // work orders; the coordinator calls this concurrently for progress
  // accounting, so it must take the same lock.
  OpState& s = *states_[op];
  std::lock_guard<std::mutex> lock(s.mu);
  size_t bytes = s.hash_rows.size() * 64 + s.agg.size() * 48 +
                 s.seen.size() * 24 + s.buffer.size() * 64;
  return bytes;
}

}  // namespace lsched

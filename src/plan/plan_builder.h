#ifndef LSCHED_PLAN_PLAN_BUILDER_H_
#define LSCHED_PLAN_PLAN_BUILDER_H_

#include <optional>
#include <vector>

#include "plan/query_plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lsched {

/// Fluent constructor for QueryPlan DAGs. Node estimates (rows, work
/// orders, block bitmaps) are derived from catalog statistics for source
/// operators and from producer estimates for intermediates; the pipeline-
/// breaking flag of each edge defaults to !ProducesIncrementally(producer)
/// and can be overridden.
class PlanBuilder {
 public:
  /// `catalog` may be null for simulation-only plans that set row counts
  /// explicitly via NodeOptions.
  explicit PlanBuilder(const Catalog* catalog) : catalog_(catalog) {}

  struct NodeOptions {
    /// Explicit input-row estimate; required for source nodes built without
    /// a catalog, otherwise derived.
    std::optional<int64_t> input_rows;
    /// Output/input ratio override (type default otherwise).
    std::optional<double> selectivity;
    /// Rows per work order (defaults to the base relation's block capacity
    /// for source nodes, or kDefaultRowsPerWorkOrder for intermediates).
    std::optional<int64_t> rows_per_work_order;
    KernelSpec kernel;
  };

  static constexpr int64_t kDefaultRowsPerWorkOrder = 4096;

  /// Adds a source operator over `base` (scan/select/index-scan).
  int AddSource(OperatorType type, RelationId base, NodeOptions opts = {});

  /// Adds an operator consuming the outputs of `inputs` (node ids).
  int AddOp(OperatorType type, const std::vector<int>& inputs,
            NodeOptions opts = {});

  /// Overrides the pipeline-breaking flag of the edge producer->consumer.
  Status SetEdgeBreaking(int producer, int consumer, bool breaking);

  /// Marks columns used by a node (O-COLS feature).
  void AddUsedColumn(int node, ColumnId column);

  /// Adds a base relation to a node's O-IN lineage (e.g. the indexed table
  /// probed by an index-nested-loop join, which is not a plan producer).
  void AddBaseInput(int node, RelationId relation);

  /// Finalizes: validates, computes cost annotations, and returns the plan.
  Result<QueryPlan> Build();

  /// Access while building (e.g. for tests).
  const QueryPlan& plan() const { return plan_; }

 private:
  int AddNodeInternal(OperatorType type, const std::vector<int>& inputs,
                      RelationId base, NodeOptions opts);

  const Catalog* catalog_;
  QueryPlan plan_;
};

}  // namespace lsched

#endif  // LSCHED_PLAN_PLAN_BUILDER_H_

#ifndef LSCHED_PLAN_QUERY_PLAN_H_
#define LSCHED_PLAN_QUERY_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/operator_type.h"
#include "storage/types.h"
#include "util/status.h"

namespace lsched {

/// Aggregate functions supported by the aggregation kernels.
enum class AggFn : uint8_t { kSum = 0, kCount, kMin, kMax, kAvg };

/// Kernel parameters needed by RealEngine to actually execute an operator.
/// Simulation-only plans may leave this default-initialized.
struct KernelSpec {
  // Filter (Select / IndexScan): keep rows with lo <= col <= hi.
  int filter_column = -1;
  double filter_lo = 0.0;
  double filter_hi = 0.0;

  // Projection: output column subset (empty = all).
  std::vector<int> project_columns;

  // Hash / merge / nested-loop joins: key column per side.
  int build_key = -1;
  int probe_key = -1;

  // Aggregation.
  int group_by_column = -1;  ///< -1 = scalar aggregate
  int agg_column = -1;
  AggFn agg_fn = AggFn::kSum;

  // Sort / TopK / Limit.
  int sort_column = -1;
  int64_t limit = -1;

  // Index-nested-loop join: the indexed base relation and its key column.
  RelationId index_relation = kInvalidRelation;
  int index_key = 0;
};

/// One physical operator in the query DAG, annotated with the optimizer
/// estimates that the feature extractor (paper §4.1) and cost model consume.
struct PlanNode {
  int id = -1;
  OperatorType type = OperatorType::kSelect;

  /// Base relations this operator reads (O-IN). Intermediate inputs are
  /// represented by the incoming edges instead.
  std::vector<RelationId> base_inputs;

  /// Catalog column ids referenced by this operator (O-COLS).
  std::vector<ColumnId> used_columns;

  /// For source operators: which blocks of the base relation the optimizer
  /// planned to touch (1 entry per planned block). For intermediates: one
  /// entry per estimated input block. Downsampled into O-BLCKS (Eq. 1).
  std::vector<double> block_bitmap;

  int64_t est_input_rows = 0;
  int64_t est_output_rows = 0;

  /// Optimizer's planned number of work orders (== planned input blocks).
  int num_work_orders = 0;

  /// Cost-model estimates, filled by CostModel::Annotate.
  double est_cost_per_wo = 0.0;
  double est_mem_per_wo = 0.0;

  /// Output-rows / input-rows; <0 means "use the type default".
  double selectivity = -1.0;

  KernelSpec kernel;

  /// Edge indices (into QueryPlan::edges) for inputs and outputs.
  std::vector<int> in_edges;
  std::vector<int> out_edges;
};

/// A producer -> consumer data-flow edge with its pipelining annotations
/// (E-NPB: non-pipeline-breaking status; direction is producer->consumer,
/// i.e. E-DIR identifies the pipeline source, paper §4.1).
struct PlanEdge {
  int id = -1;
  int producer = -1;
  int consumer = -1;
  bool pipeline_breaking = false;
};

/// A DAG of physical operators for one query. Immutable after building
/// (construct via PlanBuilder); engines keep runtime progress elsewhere.
class QueryPlan {
 public:
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const PlanNode& node(int i) const { return nodes_[i]; }
  const PlanEdge& edge(int i) const { return edges_[i]; }
  const std::vector<PlanNode>& nodes() const { return nodes_; }
  const std::vector<PlanEdge>& edges() const { return edges_; }

  PlanNode& mutable_node(int i) { return nodes_[i]; }

  /// Node ids of producers feeding `node_id`.
  std::vector<int> Producers(int node_id) const;
  /// Node ids consuming the output of `node_id`.
  std::vector<int> Consumers(int node_id) const;

  /// Nodes with no producers (typically source scans).
  std::vector<int> SourceNodes() const;
  /// Nodes with no consumers (query sinks).
  std::vector<int> SinkNodes() const;

  /// Producer-before-consumer order. Requires a valid (acyclic) plan.
  std::vector<int> TopologicalOrder() const;

  /// Checks the DAG is well-formed: edges reference valid nodes, the graph
  /// is acyclic, and every non-source node has at least one producer.
  Status Validate() const;

  /// The longest chain of operators reachable from `node_id` by repeatedly
  /// following non-pipeline-breaking output edges. Index 0 is `node_id`
  /// itself. This bounds the pipeline-degree action (paper §5.3.2).
  std::vector<int> LongestPipelineFrom(int node_id) const;

  /// Total estimated remaining cost of the whole plan (sum over nodes of
  /// num_work_orders * est_cost_per_wo). A static "work" metric used by
  /// heuristic schedulers (SJF, critical path).
  double TotalEstimatedCost() const;

  /// Length (in nodes) of the most expensive source-to-sink path, weighting
  /// each node by its estimated total cost. Used by the critical-path
  /// heuristic.
  double CriticalPathCost() const;

 private:
  friend class PlanBuilder;

  std::vector<PlanNode> nodes_;
  std::vector<PlanEdge> edges_;
};

}  // namespace lsched

#endif  // LSCHED_PLAN_QUERY_PLAN_H_

#include "plan/plan_builder.h"

#include <algorithm>
#include <cmath>

#include "plan/cost_model.h"
#include "util/logging.h"

namespace lsched {

int PlanBuilder::AddSource(OperatorType type, RelationId base,
                           NodeOptions opts) {
  return AddNodeInternal(type, {}, base, std::move(opts));
}

int PlanBuilder::AddOp(OperatorType type, const std::vector<int>& inputs,
                       NodeOptions opts) {
  return AddNodeInternal(type, inputs, kInvalidRelation, std::move(opts));
}

int PlanBuilder::AddNodeInternal(OperatorType type,
                                 const std::vector<int>& inputs,
                                 RelationId base, NodeOptions opts) {
  PlanNode node;
  node.id = static_cast<int>(plan_.nodes_.size());
  node.type = type;
  node.kernel = opts.kernel;
  node.selectivity = opts.selectivity.value_or(-1.0);

  int64_t input_rows = 0;
  int64_t rows_per_wo =
      opts.rows_per_work_order.value_or(kDefaultRowsPerWorkOrder);

  if (base != kInvalidRelation) {
    node.base_inputs.push_back(base);
    if (catalog_ != nullptr) {
      const Relation& rel = catalog_->relation(base);
      input_rows = opts.input_rows.value_or(rel.num_rows());
      if (!opts.rows_per_work_order.has_value()) {
        rows_per_wo = static_cast<int64_t>(rel.block_capacity());
      }
    } else {
      input_rows = opts.input_rows.value_or(rows_per_wo);
    }
  } else if (!inputs.empty()) {
    for (int producer : inputs) {
      LSCHED_CHECK(producer >= 0 &&
                   producer < static_cast<int>(plan_.nodes_.size()))
          << "invalid producer id " << producer;
      const PlanNode& p = plan_.nodes_[producer];
      input_rows += p.est_output_rows;
      // Propagate base-relation lineage for the O-IN feature.
      for (RelationId rid : p.base_inputs) {
        if (std::find(node.base_inputs.begin(), node.base_inputs.end(),
                      rid) == node.base_inputs.end()) {
          node.base_inputs.push_back(rid);
        }
      }
      PlanEdge edge;
      edge.id = static_cast<int>(plan_.edges_.size());
      edge.producer = producer;
      edge.consumer = node.id;
      edge.pipeline_breaking = !ProducesIncrementally(p.type);
      plan_.nodes_[producer].out_edges.push_back(edge.id);
      node.in_edges.push_back(edge.id);
      plan_.edges_.push_back(edge);
    }
  } else {
    input_rows = opts.input_rows.value_or(rows_per_wo);
  }

  node.est_input_rows = std::max<int64_t>(input_rows, 0);
  const double ratio = node.selectivity >= 0.0 ? node.selectivity
                                               : DefaultOutputRatio(type);
  node.est_output_rows = std::max<int64_t>(
      static_cast<int64_t>(std::llround(
          static_cast<double>(node.est_input_rows) * ratio)),
      type == OperatorType::kBuildHash ? 0 : 1);

  if (rows_per_wo <= 0) rows_per_wo = kDefaultRowsPerWorkOrder;
  node.num_work_orders = static_cast<int>(std::max<int64_t>(
      (node.est_input_rows + rows_per_wo - 1) / rows_per_wo, 1));
  node.block_bitmap.assign(static_cast<size_t>(node.num_work_orders), 1.0);

  plan_.nodes_.push_back(std::move(node));
  return plan_.nodes_.back().id;
}

Status PlanBuilder::SetEdgeBreaking(int producer, int consumer,
                                    bool breaking) {
  for (PlanEdge& e : plan_.edges_) {
    if (e.producer == producer && e.consumer == consumer) {
      e.pipeline_breaking = breaking;
      return Status::OK();
    }
  }
  return Status::NotFound("no such edge");
}

void PlanBuilder::AddBaseInput(int node, RelationId relation) {
  LSCHED_CHECK(node >= 0 && node < static_cast<int>(plan_.nodes_.size()));
  std::vector<RelationId>& inputs = plan_.nodes_[node].base_inputs;
  if (std::find(inputs.begin(), inputs.end(), relation) == inputs.end()) {
    inputs.push_back(relation);
  }
}

void PlanBuilder::AddUsedColumn(int node, ColumnId column) {
  LSCHED_CHECK(node >= 0 && node < static_cast<int>(plan_.nodes_.size()));
  plan_.nodes_[node].used_columns.push_back(column);
}

Result<QueryPlan> PlanBuilder::Build() {
  CostModel cost_model;
  cost_model.Annotate(&plan_);
  LSCHED_RETURN_IF_ERROR(plan_.Validate());
  return std::move(plan_);
}

}  // namespace lsched

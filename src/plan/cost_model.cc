#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

namespace lsched {

void CostModel::Annotate(QueryPlan* plan) const {
  for (size_t i = 0; i < plan->num_nodes(); ++i) {
    PlanNode& node = plan->mutable_node(static_cast<int>(i));
    const double rows_per_wo =
        node.num_work_orders > 0
            ? static_cast<double>(node.est_input_rows) /
                  static_cast<double>(node.num_work_orders)
            : 0.0;
    node.est_cost_per_wo = BaseCostPerRow(node.type) *
                           std::max(rows_per_wo, 1.0) *
                           params_.seconds_per_cost_unit;
    node.est_mem_per_wo = MemoryPerRow(node.type) * std::max(rows_per_wo, 1.0);
  }
}


double CostModel::WorkOrderSeconds(const PlanNode& node) const {
  return node.est_cost_per_wo;
}

double CostModel::PipelineWorkOrderSeconds(
    const QueryPlan& plan, const std::vector<int>& chain) const {
  if (chain.empty()) return 0.0;
  const PlanNode& root = plan.node(chain[0]);
  const double root_wos = std::max(root.num_work_orders, 1);
  double total = 0.0;
  for (size_t s = 0; s < chain.size(); ++s) {
    const PlanNode& node = plan.node(chain[s]);
    // Scale each stage's total remaining cost onto the root's work-order
    // granularity: one fused work order advances every stage by
    // (stage WOs / root WOs) of a stage work order.
    const double stage_total =
        static_cast<double>(std::max(node.num_work_orders, 1)) *
        node.est_cost_per_wo;
    double per_fused = stage_total / root_wos;
    if (s > 0) per_fused *= (1.0 - params_.pipeline_gain);
    total += per_fused;
  }
  return total * ThrashMultiplier(PipelineMemory(plan, chain));
}

double CostModel::PipelineMemory(const QueryPlan& plan,
                                 const std::vector<int>& chain) const {
  double mem = 0.0;
  for (size_t s = 0; s < chain.size(); ++s) {
    const PlanNode& node = plan.node(chain[s]);
    double stage = node.est_mem_per_wo;
    if (s > 0) {
      // In-flight buffers between stages grow with pipeline depth.
      stage += node.est_mem_per_wo * params_.pipeline_buffer_factor *
               static_cast<double>(s);
    }
    mem += stage;
  }
  return mem;
}

double CostModel::ThrashMultiplier(double memory) const {
  const double budget = params_.memory_budget_per_thread;
  if (budget <= 0.0 || memory <= budget) return 1.0;
  return 1.0 + params_.thrash_slope * (memory / budget - 1.0);
}

}  // namespace lsched

#ifndef LSCHED_PLAN_COST_MODEL_H_
#define LSCHED_PLAN_COST_MODEL_H_

#include <vector>

#include "plan/query_plan.h"

namespace lsched {

/// Tunable constants of the analytical cost model. The defaults are
/// calibrated so that one TPCH-shaped SF-10 query takes on the order of
/// seconds of (virtual) time on one thread, matching the magnitude the
/// paper reports; `bench/micro_costmodel` compares the model against real
/// kernel measurements from RealEngine.
struct CostModelParams {
  /// Virtual seconds per abstract cost unit (1 unit == one row through a
  /// simple filter).
  double seconds_per_cost_unit = 2e-6;

  /// Fractional per-work-order cost reduction for a pipelined (non-root)
  /// stage: its input arrives cache-hot from the previous stage.
  double pipeline_gain = 0.30;

  /// Memory budget per execution thread, in model units (MemoryPerRow *
  /// rows). Exceeding it while running a pipeline causes thrashing.
  /// Calibrated so ~3 full-width streaming stages fit; selective chains
  /// (smaller per-stage rows) pipeline deeper — which is exactly the
  /// workload-dependent sweet spot the paper's degree predictor learns.
  double memory_budget_per_thread = 150000.0;

  /// Slope of the thrashing penalty: multiplier = 1 + slope * overrun_ratio
  /// once pipeline memory exceeds the budget (paper §5.3.2: greedy
  /// pipelining "consumes memory buffers at a high rate and causes
  /// thrashing").
  double thrash_slope = 0.5;

  /// Additional in-flight buffer memory a pipeline holds per stage beyond
  /// the first, as a fraction of the stage's own state (deep pipelines keep
  /// more blocks in flight).
  double pipeline_buffer_factor = 0.5;

  /// Coefficient of variation of work-order duration noise in simulation.
  double noise_cv = 0.12;

  /// Relative speedup when a work order runs on a thread that recently ran
  /// work from the same query (thread locality, Q-LOC).
  double locality_gain = 0.10;

  /// Per-extra-thread slowdown when k threads execute work orders of the
  /// same query concurrently (shared hash tables, memory bandwidth, morsel
  /// dispatch contention): duration *= 1 + c * (k - 1). This is why
  /// granting one query the whole pool — FIFO's policy — has diminishing
  /// returns, and what makes the parallelism-degree decision non-trivial.
  double intra_query_contention = 0.015;
};

/// Computes per-work-order cost/memory annotations for plans and fused
/// pipeline costs for the simulator and heuristics.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostModelParams params) : params_(params) {}

  const CostModelParams& params() const { return params_; }

  /// Fills est_cost_per_wo / est_mem_per_wo on every node of `plan`.
  void Annotate(QueryPlan* plan) const;

  /// Expected duration (virtual seconds) of one work order of `node` when
  /// executed standalone.
  double WorkOrderSeconds(const PlanNode& node) const;

  /// Expected duration of one fused work order of the pipeline `chain`
  /// (node ids, root first): one root block pushed through all stages,
  /// with cache gains for non-root stages and a thrashing penalty when the
  /// pipeline's memory footprint exceeds the per-thread budget.
  double PipelineWorkOrderSeconds(const QueryPlan& plan,
                                  const std::vector<int>& chain) const;

  /// Memory footprint (model units) of running `chain` as one pipeline.
  double PipelineMemory(const QueryPlan& plan,
                        const std::vector<int>& chain) const;

  /// Thrash multiplier for a pipeline using `memory` units on one thread.
  double ThrashMultiplier(double memory) const;

 private:
  CostModelParams params_;
};

}  // namespace lsched

#endif  // LSCHED_PLAN_COST_MODEL_H_

#include "plan/operator_type.h"

namespace lsched {

const char* OperatorTypeName(OperatorType t) {
  switch (t) {
    case OperatorType::kTableScan:
      return "TableScan";
    case OperatorType::kSelect:
      return "Select";
    case OperatorType::kIndexScan:
      return "IndexScan";
    case OperatorType::kProject:
      return "Project";
    case OperatorType::kBuildHash:
      return "BuildHash";
    case OperatorType::kProbeHash:
      return "ProbeHash";
    case OperatorType::kNestedLoopJoin:
      return "NestedLoopJoin";
    case OperatorType::kIndexNestedLoopJoin:
      return "IndexNestedLoopJoin";
    case OperatorType::kMergeJoin:
      return "MergeJoin";
    case OperatorType::kSortRuns:
      return "SortRuns";
    case OperatorType::kMergeSortedRuns:
      return "MergeSortedRuns";
    case OperatorType::kHashAggregate:
      return "HashAggregate";
    case OperatorType::kSortedAggregate:
      return "SortedAggregate";
    case OperatorType::kFinalizeAggregate:
      return "FinalizeAggregate";
    case OperatorType::kDistinct:
      return "Distinct";
    case OperatorType::kUnion:
      return "Union";
    case OperatorType::kIntersect:
      return "Intersect";
    case OperatorType::kTopK:
      return "TopK";
    case OperatorType::kLimit:
      return "Limit";
    case OperatorType::kWindow:
      return "Window";
    case OperatorType::kMaterialize:
      return "Materialize";
    case OperatorType::kCreateTempTable:
      return "CreateTempTable";
    case OperatorType::kNumOperatorTypes:
      break;
  }
  return "?";
}

bool ProducesIncrementally(OperatorType t) {
  switch (t) {
    case OperatorType::kBuildHash:
    case OperatorType::kSortRuns:
    case OperatorType::kMergeSortedRuns:
    case OperatorType::kHashAggregate:
    case OperatorType::kSortedAggregate:
    case OperatorType::kFinalizeAggregate:
    case OperatorType::kTopK:
    case OperatorType::kWindow:
    case OperatorType::kIntersect:
      return false;
    default:
      return true;
  }
}

bool IsSourceOperator(OperatorType t) {
  switch (t) {
    case OperatorType::kTableScan:
    case OperatorType::kSelect:
    case OperatorType::kIndexScan:
      return true;
    default:
      return false;
  }
}

double BaseCostPerRow(OperatorType t) {
  // Relative units: 1.0 == cost of streaming one row through a simple
  // filter. Joins and sorts cost more per row; index access is cheap per
  // *output* row but applied to fewer rows.
  switch (t) {
    case OperatorType::kTableScan:
      return 0.6;
    case OperatorType::kSelect:
      return 1.0;
    case OperatorType::kIndexScan:
      return 0.35;
    case OperatorType::kProject:
      return 0.5;
    case OperatorType::kBuildHash:
      return 1.8;
    case OperatorType::kProbeHash:
      return 1.6;
    case OperatorType::kNestedLoopJoin:
      return 6.0;
    case OperatorType::kIndexNestedLoopJoin:
      return 2.2;
    case OperatorType::kMergeJoin:
      return 1.4;
    case OperatorType::kSortRuns:
      return 2.6;
    case OperatorType::kMergeSortedRuns:
      return 1.2;
    case OperatorType::kHashAggregate:
      return 1.7;
    case OperatorType::kSortedAggregate:
      return 0.9;
    case OperatorType::kFinalizeAggregate:
      return 0.8;
    case OperatorType::kDistinct:
      return 1.5;
    case OperatorType::kUnion:
      return 0.4;
    case OperatorType::kIntersect:
      return 1.5;
    case OperatorType::kTopK:
      return 1.1;
    case OperatorType::kLimit:
      return 0.2;
    case OperatorType::kWindow:
      return 2.0;
    case OperatorType::kMaterialize:
      return 0.5;
    case OperatorType::kCreateTempTable:
      return 0.4;
    case OperatorType::kNumOperatorTypes:
      break;
  }
  return 1.0;
}

double MemoryPerRow(OperatorType t) {
  // Relative units: bytes of state retained per input row while running.
  switch (t) {
    case OperatorType::kBuildHash:
      return 24.0;
    case OperatorType::kHashAggregate:
      return 16.0;
    case OperatorType::kSortRuns:
    case OperatorType::kMergeSortedRuns:
      return 16.0;
    case OperatorType::kDistinct:
      return 16.0;
    case OperatorType::kIntersect:
      return 16.0;
    case OperatorType::kTopK:
      return 4.0;
    case OperatorType::kWindow:
      return 12.0;
    case OperatorType::kMaterialize:
    case OperatorType::kCreateTempTable:
      return 8.0;
    default:
      return 4.0;  // streaming operators hold in-flight block buffers
  }
}

double DefaultOutputRatio(OperatorType t) {
  switch (t) {
    case OperatorType::kSelect:
      return 0.25;
    case OperatorType::kIndexScan:
      return 0.05;
    case OperatorType::kProbeHash:
    case OperatorType::kMergeJoin:
    case OperatorType::kIndexNestedLoopJoin:
    case OperatorType::kNestedLoopJoin:
      return 1.0;
    case OperatorType::kHashAggregate:
    case OperatorType::kSortedAggregate:
      return 0.05;
    case OperatorType::kFinalizeAggregate:
      return 0.5;
    case OperatorType::kDistinct:
      return 0.4;
    case OperatorType::kTopK:
    case OperatorType::kLimit:
      return 0.01;
    case OperatorType::kBuildHash:
      return 0.0;  // produces a hash table, not a tuple stream
    default:
      return 1.0;
  }
}

}  // namespace lsched

#ifndef LSCHED_PLAN_OPERATOR_TYPE_H_
#define LSCHED_PLAN_OPERATOR_TYPE_H_

#include <cstdint>

namespace lsched {

/// Physical operator types. Mirrors the work-order based operator set of
/// Quickstep (paper §2 reports 29 operator implementations; we implement the
/// 22 that the TPCH/SSB/JOB plan shapes exercise).
enum class OperatorType : uint8_t {
  kTableScan = 0,        ///< full scan, no predicate
  kSelect,               ///< scan + filter predicate
  kIndexScan,            ///< selective scan via an index
  kProject,              ///< column projection / expression evaluation
  kBuildHash,            ///< build side of a hash join
  kProbeHash,            ///< probe side of a hash join
  kNestedLoopJoin,       ///< block nested loop join
  kIndexNestedLoopJoin,  ///< index nested loop join
  kMergeJoin,            ///< merge join over sorted inputs
  kSortRuns,             ///< in-block sort run generation
  kMergeSortedRuns,      ///< merge of sorted runs
  kHashAggregate,        ///< hash-based (partial) aggregation
  kSortedAggregate,      ///< aggregation over sorted input
  kFinalizeAggregate,    ///< final merge of partial aggregates
  kDistinct,             ///< hash-based duplicate elimination
  kUnion,                ///< bag union
  kIntersect,            ///< set intersection
  kTopK,                 ///< top-k selection
  kLimit,                ///< row limit
  kWindow,               ///< window function over partitions
  kMaterialize,          ///< materialize intermediate result
  kCreateTempTable,      ///< DDL-ish sink for temp results
  kNumOperatorTypes,     ///< sentinel: size of the O-TY one-hot vocabulary
};

inline constexpr int kNumOperatorTypes =
    static_cast<int>(OperatorType::kNumOperatorTypes);

/// Stable printable name ("Select", "ProbeHash", ...).
const char* OperatorTypeName(OperatorType t);

/// True when the operator emits output tuples incrementally as it consumes
/// input. An edge out of a non-incremental producer is pipeline breaking
/// (E-NPB = 0): the consumer is blocked until the producer completes
/// (paper §4.1, e.g. BuildHash -> ProbeHash).
bool ProducesIncrementally(OperatorType t);

/// True for leaf operators that read base relations (generate their own
/// work orders directly from stored blocks).
bool IsSourceOperator(OperatorType t);

/// Relative CPU cost per input row for the simulator's cost model
/// (calibrated against RealEngine kernels; see bench/micro_costmodel).
double BaseCostPerRow(OperatorType t);

/// Relative memory footprint per input row held while the operator runs
/// (hash tables and sorts retain state; filters do not).
double MemoryPerRow(OperatorType t);

/// Average output rows per input row absent a more specific estimate
/// (selectivity for filters, fan-out for joins).
double DefaultOutputRatio(OperatorType t);

}  // namespace lsched

#endif  // LSCHED_PLAN_OPERATOR_TYPE_H_

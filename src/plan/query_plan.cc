#include "plan/query_plan.h"

#include <algorithm>
#include <functional>

namespace lsched {

std::vector<int> QueryPlan::Producers(int node_id) const {
  std::vector<int> out;
  for (int e : nodes_[node_id].in_edges) out.push_back(edges_[e].producer);
  return out;
}

std::vector<int> QueryPlan::Consumers(int node_id) const {
  std::vector<int> out;
  for (int e : nodes_[node_id].out_edges) out.push_back(edges_[e].consumer);
  return out;
}

std::vector<int> QueryPlan::SourceNodes() const {
  std::vector<int> out;
  for (const PlanNode& n : nodes_) {
    if (n.in_edges.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<int> QueryPlan::SinkNodes() const {
  std::vector<int> out;
  for (const PlanNode& n : nodes_) {
    if (n.out_edges.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<int> QueryPlan::TopologicalOrder() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (const PlanEdge& e : edges_) ++indegree[e.consumer];
  std::vector<int> frontier;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) frontier.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  while (!frontier.empty()) {
    const int n = frontier.back();
    frontier.pop_back();
    order.push_back(n);
    for (int e : nodes_[n].out_edges) {
      if (--indegree[edges_[e].consumer] == 0) {
        frontier.push_back(edges_[e].consumer);
      }
    }
  }
  return order;
}

Status QueryPlan::Validate() const {
  const int n = static_cast<int>(nodes_.size());
  if (n == 0) return Status::InvalidArgument("empty plan");
  for (const PlanEdge& e : edges_) {
    if (e.producer < 0 || e.producer >= n || e.consumer < 0 ||
        e.consumer >= n || e.producer == e.consumer) {
      return Status::InvalidArgument("edge references invalid node");
    }
  }
  if (TopologicalOrder().size() != nodes_.size()) {
    return Status::InvalidArgument("plan contains a cycle");
  }
  for (const PlanNode& node : nodes_) {
    if (node.in_edges.empty() && !IsSourceOperator(node.type) &&
        node.base_inputs.empty()) {
      return Status::InvalidArgument(
          std::string("non-source node without inputs: ") +
          OperatorTypeName(node.type));
    }
    if (node.num_work_orders <= 0) {
      return Status::InvalidArgument("node with no work orders");
    }
  }
  return Status::OK();
}

std::vector<int> QueryPlan::LongestPipelineFrom(int node_id) const {
  // Memoized longest chain over the (acyclic) non-breaking subgraph.
  std::vector<std::vector<int>> memo(nodes_.size());
  std::function<const std::vector<int>&(int)> chain =
      [&](int id) -> const std::vector<int>& {
    if (!memo[id].empty()) return memo[id];
    std::vector<int> best;
    for (int e : nodes_[id].out_edges) {
      if (edges_[e].pipeline_breaking) continue;
      const std::vector<int>& sub = chain(edges_[e].consumer);
      if (sub.size() > best.size()) best = sub;
    }
    memo[id].push_back(id);
    memo[id].insert(memo[id].end(), best.begin(), best.end());
    return memo[id];
  };
  return chain(node_id);
}

double QueryPlan::TotalEstimatedCost() const {
  double total = 0.0;
  for (const PlanNode& n : nodes_) {
    total += static_cast<double>(n.num_work_orders) * n.est_cost_per_wo;
  }
  return total;
}

double QueryPlan::CriticalPathCost() const {
  std::vector<double> best(nodes_.size(), 0.0);
  const std::vector<int> order = TopologicalOrder();
  double answer = 0.0;
  for (int id : order) {
    const PlanNode& node = nodes_[id];
    double incoming = 0.0;
    for (int e : node.in_edges) {
      incoming = std::max(incoming, best[edges_[e].producer]);
    }
    best[id] = incoming +
               static_cast<double>(node.num_work_orders) * node.est_cost_per_wo;
    answer = std::max(answer, best[id]);
  }
  return answer;
}

}  // namespace lsched

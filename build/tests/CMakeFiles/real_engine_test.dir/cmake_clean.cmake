file(REMOVE_RECURSE
  "CMakeFiles/real_engine_test.dir/real_engine_test.cc.o"
  "CMakeFiles/real_engine_test.dir/real_engine_test.cc.o.d"
  "real_engine_test"
  "real_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for real_engine_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/plan_test.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/plan_test.dir/plan_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lsched_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/lsched_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lsched_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/lsched_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lsched_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

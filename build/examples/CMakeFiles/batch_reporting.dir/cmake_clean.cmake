file(REMOVE_RECURSE
  "CMakeFiles/batch_reporting.dir/batch_reporting.cpp.o"
  "CMakeFiles/batch_reporting.dir/batch_reporting.cpp.o.d"
  "batch_reporting"
  "batch_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

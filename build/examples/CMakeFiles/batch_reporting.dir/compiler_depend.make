# Empty compiler generated dependencies file for batch_reporting.
# This may be replaced when dependencies are built.

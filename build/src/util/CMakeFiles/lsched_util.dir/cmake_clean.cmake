file(REMOVE_RECURSE
  "CMakeFiles/lsched_util.dir/logging.cc.o"
  "CMakeFiles/lsched_util.dir/logging.cc.o.d"
  "CMakeFiles/lsched_util.dir/math_util.cc.o"
  "CMakeFiles/lsched_util.dir/math_util.cc.o.d"
  "CMakeFiles/lsched_util.dir/rng.cc.o"
  "CMakeFiles/lsched_util.dir/rng.cc.o.d"
  "CMakeFiles/lsched_util.dir/serialization.cc.o"
  "CMakeFiles/lsched_util.dir/serialization.cc.o.d"
  "CMakeFiles/lsched_util.dir/status.cc.o"
  "CMakeFiles/lsched_util.dir/status.cc.o.d"
  "liblsched_util.a"
  "liblsched_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

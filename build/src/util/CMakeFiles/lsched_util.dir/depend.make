# Empty dependencies file for lsched_util.
# This may be replaced when dependencies are built.

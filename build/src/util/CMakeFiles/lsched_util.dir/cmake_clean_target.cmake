file(REMOVE_RECURSE
  "liblsched_util.a"
)

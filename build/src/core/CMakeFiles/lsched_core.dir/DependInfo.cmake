
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/agent.cc" "src/core/CMakeFiles/lsched_core.dir/agent.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/agent.cc.o.d"
  "/root/repo/src/core/encoder.cc" "src/core/CMakeFiles/lsched_core.dir/encoder.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/encoder.cc.o.d"
  "/root/repo/src/core/experience.cc" "src/core/CMakeFiles/lsched_core.dir/experience.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/experience.cc.o.d"
  "/root/repo/src/core/features.cc" "src/core/CMakeFiles/lsched_core.dir/features.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/features.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/lsched_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/model.cc.o.d"
  "/root/repo/src/core/online.cc" "src/core/CMakeFiles/lsched_core.dir/online.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/online.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/lsched_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/reward.cc" "src/core/CMakeFiles/lsched_core.dir/reward.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/reward.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/lsched_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/lsched_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/lsched_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lsched_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/lsched_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsched_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lsched_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/lsched_core.dir/agent.cc.o"
  "CMakeFiles/lsched_core.dir/agent.cc.o.d"
  "CMakeFiles/lsched_core.dir/encoder.cc.o"
  "CMakeFiles/lsched_core.dir/encoder.cc.o.d"
  "CMakeFiles/lsched_core.dir/experience.cc.o"
  "CMakeFiles/lsched_core.dir/experience.cc.o.d"
  "CMakeFiles/lsched_core.dir/features.cc.o"
  "CMakeFiles/lsched_core.dir/features.cc.o.d"
  "CMakeFiles/lsched_core.dir/model.cc.o"
  "CMakeFiles/lsched_core.dir/model.cc.o.d"
  "CMakeFiles/lsched_core.dir/online.cc.o"
  "CMakeFiles/lsched_core.dir/online.cc.o.d"
  "CMakeFiles/lsched_core.dir/predictor.cc.o"
  "CMakeFiles/lsched_core.dir/predictor.cc.o.d"
  "CMakeFiles/lsched_core.dir/reward.cc.o"
  "CMakeFiles/lsched_core.dir/reward.cc.o.d"
  "CMakeFiles/lsched_core.dir/trainer.cc.o"
  "CMakeFiles/lsched_core.dir/trainer.cc.o.d"
  "liblsched_core.a"
  "liblsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lsched_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblsched_core.a"
)

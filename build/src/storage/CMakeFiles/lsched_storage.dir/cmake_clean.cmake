file(REMOVE_RECURSE
  "CMakeFiles/lsched_storage.dir/block.cc.o"
  "CMakeFiles/lsched_storage.dir/block.cc.o.d"
  "CMakeFiles/lsched_storage.dir/catalog.cc.o"
  "CMakeFiles/lsched_storage.dir/catalog.cc.o.d"
  "CMakeFiles/lsched_storage.dir/relation.cc.o"
  "CMakeFiles/lsched_storage.dir/relation.cc.o.d"
  "CMakeFiles/lsched_storage.dir/table_generator.cc.o"
  "CMakeFiles/lsched_storage.dir/table_generator.cc.o.d"
  "liblsched_storage.a"
  "liblsched_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

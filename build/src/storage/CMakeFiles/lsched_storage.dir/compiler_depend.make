# Empty compiler generated dependencies file for lsched_storage.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblsched_storage.a"
)

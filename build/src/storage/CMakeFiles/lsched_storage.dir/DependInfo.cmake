
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block.cc" "src/storage/CMakeFiles/lsched_storage.dir/block.cc.o" "gcc" "src/storage/CMakeFiles/lsched_storage.dir/block.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/lsched_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/lsched_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/storage/CMakeFiles/lsched_storage.dir/relation.cc.o" "gcc" "src/storage/CMakeFiles/lsched_storage.dir/relation.cc.o.d"
  "/root/repo/src/storage/table_generator.cc" "src/storage/CMakeFiles/lsched_storage.dir/table_generator.cc.o" "gcc" "src/storage/CMakeFiles/lsched_storage.dir/table_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

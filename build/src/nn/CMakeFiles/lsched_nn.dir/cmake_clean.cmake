file(REMOVE_RECURSE
  "CMakeFiles/lsched_nn.dir/autograd.cc.o"
  "CMakeFiles/lsched_nn.dir/autograd.cc.o.d"
  "CMakeFiles/lsched_nn.dir/layers.cc.o"
  "CMakeFiles/lsched_nn.dir/layers.cc.o.d"
  "CMakeFiles/lsched_nn.dir/optimizer.cc.o"
  "CMakeFiles/lsched_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/lsched_nn.dir/params.cc.o"
  "CMakeFiles/lsched_nn.dir/params.cc.o.d"
  "CMakeFiles/lsched_nn.dir/tensor.cc.o"
  "CMakeFiles/lsched_nn.dir/tensor.cc.o.d"
  "liblsched_nn.a"
  "liblsched_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

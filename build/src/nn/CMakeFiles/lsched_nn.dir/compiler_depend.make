# Empty compiler generated dependencies file for lsched_nn.
# This may be replaced when dependencies are built.

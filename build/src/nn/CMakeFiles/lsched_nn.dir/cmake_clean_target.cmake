file(REMOVE_RECURSE
  "liblsched_nn.a"
)

# Empty dependencies file for lsched_plan.
# This may be replaced when dependencies are built.

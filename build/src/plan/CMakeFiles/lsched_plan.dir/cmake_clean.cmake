file(REMOVE_RECURSE
  "CMakeFiles/lsched_plan.dir/cost_model.cc.o"
  "CMakeFiles/lsched_plan.dir/cost_model.cc.o.d"
  "CMakeFiles/lsched_plan.dir/operator_type.cc.o"
  "CMakeFiles/lsched_plan.dir/operator_type.cc.o.d"
  "CMakeFiles/lsched_plan.dir/plan_builder.cc.o"
  "CMakeFiles/lsched_plan.dir/plan_builder.cc.o.d"
  "CMakeFiles/lsched_plan.dir/query_plan.cc.o"
  "CMakeFiles/lsched_plan.dir/query_plan.cc.o.d"
  "liblsched_plan.a"
  "liblsched_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

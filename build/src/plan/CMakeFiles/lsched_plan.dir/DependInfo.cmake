
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/cost_model.cc" "src/plan/CMakeFiles/lsched_plan.dir/cost_model.cc.o" "gcc" "src/plan/CMakeFiles/lsched_plan.dir/cost_model.cc.o.d"
  "/root/repo/src/plan/operator_type.cc" "src/plan/CMakeFiles/lsched_plan.dir/operator_type.cc.o" "gcc" "src/plan/CMakeFiles/lsched_plan.dir/operator_type.cc.o.d"
  "/root/repo/src/plan/plan_builder.cc" "src/plan/CMakeFiles/lsched_plan.dir/plan_builder.cc.o" "gcc" "src/plan/CMakeFiles/lsched_plan.dir/plan_builder.cc.o.d"
  "/root/repo/src/plan/query_plan.cc" "src/plan/CMakeFiles/lsched_plan.dir/query_plan.cc.o" "gcc" "src/plan/CMakeFiles/lsched_plan.dir/query_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/lsched_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblsched_plan.a"
)

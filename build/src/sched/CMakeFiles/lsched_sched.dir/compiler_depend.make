# Empty compiler generated dependencies file for lsched_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lsched_sched.dir/decima.cc.o"
  "CMakeFiles/lsched_sched.dir/decima.cc.o.d"
  "CMakeFiles/lsched_sched.dir/heuristics.cc.o"
  "CMakeFiles/lsched_sched.dir/heuristics.cc.o.d"
  "CMakeFiles/lsched_sched.dir/selftune.cc.o"
  "CMakeFiles/lsched_sched.dir/selftune.cc.o.d"
  "liblsched_sched.a"
  "liblsched_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

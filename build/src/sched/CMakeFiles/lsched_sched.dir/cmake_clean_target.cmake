file(REMOVE_RECURSE
  "liblsched_sched.a"
)

# Empty compiler generated dependencies file for lsched_exec.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/kernels.cc" "src/exec/CMakeFiles/lsched_exec.dir/kernels.cc.o" "gcc" "src/exec/CMakeFiles/lsched_exec.dir/kernels.cc.o.d"
  "/root/repo/src/exec/query_state.cc" "src/exec/CMakeFiles/lsched_exec.dir/query_state.cc.o" "gcc" "src/exec/CMakeFiles/lsched_exec.dir/query_state.cc.o.d"
  "/root/repo/src/exec/real_engine.cc" "src/exec/CMakeFiles/lsched_exec.dir/real_engine.cc.o" "gcc" "src/exec/CMakeFiles/lsched_exec.dir/real_engine.cc.o.d"
  "/root/repo/src/exec/sim_engine.cc" "src/exec/CMakeFiles/lsched_exec.dir/sim_engine.cc.o" "gcc" "src/exec/CMakeFiles/lsched_exec.dir/sim_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/lsched_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lsched_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lsched_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

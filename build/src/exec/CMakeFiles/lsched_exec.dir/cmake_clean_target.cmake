file(REMOVE_RECURSE
  "liblsched_exec.a"
)

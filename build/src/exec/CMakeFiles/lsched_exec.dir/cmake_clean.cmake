file(REMOVE_RECURSE
  "CMakeFiles/lsched_exec.dir/kernels.cc.o"
  "CMakeFiles/lsched_exec.dir/kernels.cc.o.d"
  "CMakeFiles/lsched_exec.dir/query_state.cc.o"
  "CMakeFiles/lsched_exec.dir/query_state.cc.o.d"
  "CMakeFiles/lsched_exec.dir/real_engine.cc.o"
  "CMakeFiles/lsched_exec.dir/real_engine.cc.o.d"
  "CMakeFiles/lsched_exec.dir/sim_engine.cc.o"
  "CMakeFiles/lsched_exec.dir/sim_engine.cc.o.d"
  "liblsched_exec.a"
  "liblsched_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

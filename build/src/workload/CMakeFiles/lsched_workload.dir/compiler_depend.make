# Empty compiler generated dependencies file for lsched_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblsched_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lsched_workload.dir/benchmarks.cc.o"
  "CMakeFiles/lsched_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/lsched_workload.dir/templates.cc.o"
  "CMakeFiles/lsched_workload.dir/templates.cc.o.d"
  "CMakeFiles/lsched_workload.dir/workload.cc.o"
  "CMakeFiles/lsched_workload.dir/workload.cc.o.d"
  "liblsched_workload.a"
  "liblsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

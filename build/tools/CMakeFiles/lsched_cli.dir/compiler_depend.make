# Empty compiler generated dependencies file for lsched_cli.
# This may be replaced when dependencies are built.

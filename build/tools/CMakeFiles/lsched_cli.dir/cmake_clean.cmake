file(REMOVE_RECURSE
  "CMakeFiles/lsched_cli.dir/lsched_cli.cc.o"
  "CMakeFiles/lsched_cli.dir/lsched_cli.cc.o.d"
  "lsched_cli"
  "lsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig10_job.dir/fig10_job.cc.o"
  "CMakeFiles/fig10_job.dir/fig10_job.cc.o.d"
  "fig10_job"
  "fig10_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig10_job.
# This may be replaced when dependencies are built.

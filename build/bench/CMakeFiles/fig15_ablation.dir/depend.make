# Empty dependencies file for fig15_ablation.
# This may be replaced when dependencies are built.

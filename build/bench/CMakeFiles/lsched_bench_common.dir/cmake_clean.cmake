file(REMOVE_RECURSE
  "CMakeFiles/lsched_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/lsched_bench_common.dir/bench_common.cc.o.d"
  "liblsched_bench_common.a"
  "liblsched_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsched_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lsched_bench_common.
# This may be replaced when dependencies are built.

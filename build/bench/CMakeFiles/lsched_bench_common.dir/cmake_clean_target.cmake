file(REMOVE_RECURSE
  "liblsched_bench_common.a"
)

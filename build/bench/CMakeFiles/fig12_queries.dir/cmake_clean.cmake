file(REMOVE_RECURSE
  "CMakeFiles/fig12_queries.dir/fig12_queries.cc.o"
  "CMakeFiles/fig12_queries.dir/fig12_queries.cc.o.d"
  "fig12_queries"
  "fig12_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig12_queries.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_ssb.dir/fig09_ssb.cc.o"
  "CMakeFiles/fig09_ssb.dir/fig09_ssb.cc.o.d"
  "fig09_ssb"
  "fig09_ssb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ssb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

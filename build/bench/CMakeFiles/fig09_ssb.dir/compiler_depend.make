# Empty compiler generated dependencies file for fig09_ssb.
# This may be replaced when dependencies are built.

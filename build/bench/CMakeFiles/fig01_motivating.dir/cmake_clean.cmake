file(REMOVE_RECURSE
  "CMakeFiles/fig01_motivating.dir/fig01_motivating.cc.o"
  "CMakeFiles/fig01_motivating.dir/fig01_motivating.cc.o.d"
  "fig01_motivating"
  "fig01_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig01_motivating.
# This may be replaced when dependencies are built.

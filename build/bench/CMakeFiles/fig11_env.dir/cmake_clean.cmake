file(REMOVE_RECURSE
  "CMakeFiles/fig11_env.dir/fig11_env.cc.o"
  "CMakeFiles/fig11_env.dir/fig11_env.cc.o.d"
  "fig11_env"
  "fig11_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

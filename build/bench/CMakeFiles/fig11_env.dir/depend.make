# Empty dependencies file for fig11_env.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig08_tpch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_tpch.dir/fig08_tpch.cc.o"
  "CMakeFiles/fig08_tpch.dir/fig08_tpch.cc.o.d"
  "fig08_tpch"
  "fig08_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig14_training.dir/fig14_training.cc.o"
  "CMakeFiles/fig14_training.dir/fig14_training.cc.o.d"
  "fig14_training"
  "fig14_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

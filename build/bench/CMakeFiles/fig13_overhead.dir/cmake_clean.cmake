file(REMOVE_RECURSE
  "CMakeFiles/fig13_overhead.dir/fig13_overhead.cc.o"
  "CMakeFiles/fig13_overhead.dir/fig13_overhead.cc.o.d"
  "fig13_overhead"
  "fig13_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

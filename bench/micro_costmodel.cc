// Calibration harness for the simulator's cost model: measures REAL kernel
// work-order durations in RealEngine's QueryExecution and compares the
// relative costs against the cost model's BaseCostPerRow ratios, plus
// google-benchmark throughput numbers for the individual kernels.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "exec/kernels.h"
#include "plan/cost_model.h"
#include "plan/plan_builder.h"
#include "storage/table_generator.h"
#include "util/clock.h"

namespace lsched {
namespace {

std::unique_ptr<Catalog> MakeCatalog() {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(11);
  TableSpec t;
  t.name = "t";
  t.num_rows = 64 * 1024;
  t.block_capacity = 4096;
  t.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"g", DataType::kInt64, ColumnDistribution::kUniformInt, 0, 63, 0},
      {"v", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  (void)catalog->AddRelation(GenerateTable(t, &rng));
  TableSpec d;
  d.name = "d";
  d.num_rows = 8 * 1024;
  d.block_capacity = 4096;
  d.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"w", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  (void)catalog->AddRelation(GenerateTable(d, &rng));
  return catalog;
}

struct KernelUnderTest {
  OperatorType type;
  QueryPlan plan;
  int target_op;
};

KernelUnderTest MakeScanCase(const Catalog& catalog, OperatorType type) {
  PlanBuilder b(&catalog);
  PlanBuilder::NodeOptions opts;
  opts.kernel.filter_column = 2;
  opts.kernel.filter_lo = 0.25;
  opts.kernel.filter_hi = 0.75;
  const int op = b.AddSource(type, 0, opts);
  auto plan = b.Build();
  return {type, std::move(plan).value(), op};
}

double MeasureScanSecondsPerWorkOrder(const Catalog& catalog,
                                      OperatorType type) {
  KernelUnderTest cut = MakeScanCase(catalog, type);
  QueryExecution exec(&catalog, &cut.plan, 4096);
  const int wos = exec.NumWorkOrders(cut.target_op);
  Stopwatch sw;
  for (int i = 0; i < wos; ++i) {
    (void)exec.ExecuteWorkOrder({cut.target_op}, i);
  }
  return sw.ElapsedSeconds() / wos;
}

void BM_SelectKernel(benchmark::State& s) {
  auto catalog = MakeCatalog();
  KernelUnderTest cut = MakeScanCase(*catalog, OperatorType::kSelect);
  QueryExecution exec(catalog.get(), &cut.plan, 4096);
  int i = 0;
  const int wos = exec.NumWorkOrders(cut.target_op);
  for (auto _ : s) {
    (void)exec.ExecuteWorkOrder({cut.target_op}, i % wos);
    ++i;
  }
  s.SetItemsProcessed(s.iterations() * 4096);
}
BENCHMARK(BM_SelectKernel);

void BM_BuildHashKernel(benchmark::State& s) {
  auto catalog = MakeCatalog();
  for (auto _ : s) {
    s.PauseTiming();
    PlanBuilder b(catalog.get());
    const int scan = b.AddSource(OperatorType::kTableScan, 1, {});
    PlanBuilder::NodeOptions build_opts;
    build_opts.kernel.build_key = 0;
    const int build = b.AddOp(OperatorType::kBuildHash, {scan}, build_opts);
    auto plan = b.Build();
    QueryExecution exec(catalog.get(), &*plan, 4096);
    const int wos = exec.NumWorkOrders(scan);
    for (int i = 0; i < wos; ++i) (void)exec.ExecuteWorkOrder({scan}, i);
    s.ResumeTiming();
    for (int i = 0; i < exec.NumWorkOrders(build); ++i) {
      (void)exec.ExecuteWorkOrder({build}, i);
    }
  }
  s.SetItemsProcessed(s.iterations() * 8192);
}
BENCHMARK(BM_BuildHashKernel);

void BM_HashAggregateKernel(benchmark::State& s) {
  auto catalog = MakeCatalog();
  PlanBuilder b(catalog.get());
  const int scan = b.AddSource(OperatorType::kTableScan, 0, {});
  PlanBuilder::NodeOptions agg_opts;
  agg_opts.kernel.group_by_column = 1;
  agg_opts.kernel.agg_column = 2;
  agg_opts.kernel.agg_fn = AggFn::kSum;
  const int agg = b.AddOp(OperatorType::kHashAggregate, {scan}, agg_opts);
  auto plan = b.Build();
  QueryExecution exec(catalog.get(), &*plan, 4096);
  const int swos = exec.NumWorkOrders(scan);
  for (int i = 0; i < swos; ++i) (void)exec.ExecuteWorkOrder({scan}, i);
  int i = 0;
  const int awos = exec.NumWorkOrders(agg);
  for (auto _ : s) {
    (void)exec.ExecuteWorkOrder({agg}, i % awos);
    ++i;
  }
  s.SetItemsProcessed(s.iterations() * 4096);
}
BENCHMARK(BM_HashAggregateKernel);

/// Not a google-benchmark: prints the calibration table comparing measured
/// relative kernel costs against the cost model's assumed ratios, and
/// emits the perf-trajectory snapshot.
void PrintCalibrationTable() {
  auto catalog = MakeCatalog();
  const double select_s =
      MeasureScanSecondsPerWorkOrder(*catalog, OperatorType::kSelect);
  const double scan_s =
      MeasureScanSecondsPerWorkOrder(*catalog, OperatorType::kTableScan);
  std::printf("\nCost-model calibration (relative to Select == 1.0):\n");
  std::printf("%-12s measured=%6.2f  model=%6.2f\n", "TableScan",
              scan_s / select_s,
              BaseCostPerRow(OperatorType::kTableScan) /
                  BaseCostPerRow(OperatorType::kSelect));
  std::printf("(absolute Select work-order latency: %.1f us for 4096 rows; "
              "model charges %.1f us)\n",
              select_s * 1e6,
              BaseCostPerRow(OperatorType::kSelect) * 4096 *
                  CostModelParams{}.seconds_per_cost_unit * 1e6);

  PerfSnapshot snap = MakePerfSnapshot("costmodel");
  snap.Add("select.us_per_work_order", select_s * 1e6);
  snap.Add("tablescan.us_per_work_order", scan_s * 1e6);
  snap.Add("tablescan.measured_ratio", scan_s / select_s);
  snap.Add("tablescan.model_ratio",
           BaseCostPerRow(OperatorType::kTableScan) /
               BaseCostPerRow(OperatorType::kSelect));
  bench::WriteBenchSnapshot(snap);
}

}  // namespace
}  // namespace lsched

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  lsched::PrintCalibrationTable();
  return 0;
}

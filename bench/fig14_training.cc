// Reproduces Figure 14: (a) test-set average query duration as the number
// of training episodes grows, for LSched vs Decima (paper shape: LSched
// saturates in ~40% of the episodes Decima needs), and (b) the average
// episode reward with vs without transfer learning when moving TPCH -> SSB
// (paper shape: transfer halves the episodes needed to reach a good
// reward; reward is negative because it is a latency penalty).
#include <cstdio>

#include "bench/bench_common.h"
#include "util/math_util.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  const int total_episodes = cfg.episodes;
  const int checkpoints = 5;
  const int step = std::max(1, total_episodes / checkpoints);

  // --- 14a: test latency vs training episodes -----------------------------
  std::printf("Figure 14a — TPCH test avg query duration (sec) vs training "
              "episodes\n");
  std::printf("%10s %10s %10s\n", "episodes", "LSched", "Decima");
  const auto test = TestWorkload(Benchmark::kTpch, cfg.eval_queries, false,
                                 cfg.eval_interarrival, cfg.seed + 99);
  {
    LSchedModel lmodel(DefaultLSchedConfig());
    DecimaModel dmodel(DecimaConfig{});
    SimEngine train_engine = MakeEngine(cfg.threads, cfg.seed);
    SimEngine eval_engine = MakeEngine(cfg.threads, cfg.seed + 1);
    TrainConfig tcfg;
    tcfg.learning_rate = 2e-3;
    tcfg.episodes = 0;  // driven manually below
    ReinforceTrainer ltrainer(&lmodel, &train_engine, tcfg);
    DecimaTrainer dtrainer(&dmodel, &train_engine, 0, 2e-3);
    WorkloadFactory factory = TrainFactory(Benchmark::kTpch);
    Rng rng(cfg.seed);
    for (int done = 0; done < total_episodes; done += step) {
      for (int e = 0; e < step; ++e) {
        const auto w = factory(done + e, &rng);
        ltrainer.TrainOneEpisode(w);
        dtrainer.TrainOneEpisode(w);
      }
      LSchedAgent lagent(&lmodel);
      DecimaScheduler dagent(&dmodel);
      std::printf("%10d %10.3f %10.3f\n", done + step,
                  eval_engine.Run(test, &lagent).avg_latency,
                  eval_engine.Run(test, &dagent).avg_latency);
    }
  }

  // --- 14b: transfer learning TPCH -> SSB ---------------------------------
  std::printf("\nFigure 14b — SSB avg episode reward vs episodes, with and "
              "without transfer learning from the TPCH model\n");
  std::printf("%10s %14s %14s\n", "episodes", "with_TL", "without_TL");
  auto base = TrainedLSched(cfg, Benchmark::kTpch, "full",
                            DefaultLSchedConfig());

  LSchedModel with_tl(DefaultLSchedConfig());
  with_tl.params()->CopyValuesFrom(*base->params());
  with_tl.FreezeForTransfer();
  LSchedModel without_tl(DefaultLSchedConfig());

  SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 6);
  TrainConfig tcfg;
  tcfg.learning_rate = 2e-3;
  ReinforceTrainer tl_trainer(&with_tl, &engine, tcfg);
  ReinforceTrainer scratch_trainer(&without_tl, &engine, tcfg);
  WorkloadFactory factory = TrainFactory(Benchmark::kSsb);
  Rng rng(cfg.seed + 7);
  std::vector<double> tl_rewards, scratch_rewards;
  for (int done = 0; done < total_episodes; done += step) {
    for (int e = 0; e < step; ++e) {
      const auto w = factory(done + e, &rng);
      tl_rewards.push_back(tl_trainer.TrainOneEpisode(w));
      scratch_rewards.push_back(scratch_trainer.TrainOneEpisode(w));
    }
    // Report the mean reward over the last window (smoother curve).
    auto window_mean = [&](const std::vector<double>& v) {
      double s = 0.0;
      for (size_t i = v.size() - static_cast<size_t>(step); i < v.size(); ++i) {
        s += v[i];
      }
      return s / step;
    };
    std::printf("%10d %14.2f %14.2f\n", done + step, window_mean(tl_rewards),
                window_mean(scratch_rewards));
  }
  return 0;
}

// Reproduces Figure 14: (a) test-set average query duration as the number
// of training episodes grows, for LSched vs Decima (paper shape: LSched
// saturates in ~40% of the episodes Decima needs), and (b) the average
// episode reward with vs without transfer learning when moving TPCH -> SSB
// (paper shape: transfer halves the episodes needed to reach a good
// reward; reward is negative because it is a latency penalty).
//
// Learning curves come from the scalar event stream (obs/scalar_events.h):
// each trainer gets its own telemetry prefix, and the per-episode reward
// series is read back from the stream after training. With -DLSCHED_OBS=OFF
// the stream is empty and the locally collected return values are used
// instead, so the figure renders identically in both builds.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/scalar_events.h"
#include "util/math_util.h"

namespace {

// Reward series for `prefix` from the scalar event stream, or `fallback`
// (the TrainOneEpisode return values) when the stream has nothing for it.
std::vector<double> RewardSeries(const std::string& prefix,
                                 const std::vector<double>& fallback) {
  std::vector<double> series =
      lsched::obs::ScalarEventWriter::Global().SeriesValues(prefix +
                                                            ".reward");
  return series.empty() ? fallback : series;
}

}  // namespace

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  const int total_episodes = cfg.episodes;
  const int checkpoints = 5;
  const int step = std::max(1, total_episodes / checkpoints);
  PrintCsvHeader();

  // --- 14a: test latency vs training episodes -----------------------------
  std::printf("Figure 14a — TPCH test avg query duration (sec) vs training "
              "episodes\n");
  std::printf("%10s %10s %10s\n", "episodes", "LSched", "Decima");
  const auto test = TestWorkload(Benchmark::kTpch, cfg.eval_queries, false,
                                 cfg.eval_interarrival, cfg.seed + 99);
  {
    LSchedModel lmodel(DefaultLSchedConfig());
    DecimaModel dmodel(DecimaConfig{});
    SimEngine train_engine = MakeEngine(cfg.threads, cfg.seed);
    SimEngine eval_engine = MakeEngine(cfg.threads, cfg.seed + 1);
    TrainConfig tcfg;
    tcfg.learning_rate = 2e-3;
    tcfg.episodes = 0;  // driven manually below
    tcfg.telemetry_prefix = "train.fig14a";
    ReinforceTrainer ltrainer(&lmodel, &train_engine, tcfg);
    DecimaTrainer dtrainer(&dmodel, &train_engine, 0, 2e-3);
    WorkloadFactory factory = TrainFactory(Benchmark::kTpch);
    Rng rng(cfg.seed);
    for (int done = 0; done < total_episodes; done += step) {
      for (int e = 0; e < step; ++e) {
        const auto w = factory(done + e, &rng);
        ltrainer.TrainOneEpisode(w);
        dtrainer.TrainOneEpisode(w);
      }
      LSchedAgent lagent(&lmodel);
      DecimaScheduler dagent(&dmodel);
      const double llat = eval_engine.Run(test, &lagent).avg_latency;
      const double dlat = eval_engine.Run(test, &dagent).avg_latency;
      std::printf("%10d %10.3f %10.3f\n", done + step, llat, dlat);
      PrintCsvRow("fig14a", "LSched", cfg.eval_queries, cfg.threads,
                  "avg_latency_ep" + std::to_string(done + step), llat);
      PrintCsvRow("fig14a", "Decima", cfg.eval_queries, cfg.threads,
                  "avg_latency_ep" + std::to_string(done + step), dlat);
    }
  }

  // --- 14b: transfer learning TPCH -> SSB ---------------------------------
  std::printf("\nFigure 14b — SSB avg episode reward vs episodes, with and "
              "without transfer learning from the TPCH model\n");
  std::printf("%10s %14s %14s\n", "episodes", "with_TL", "without_TL");
  auto base = TrainedLSched(cfg, Benchmark::kTpch, "full",
                            DefaultLSchedConfig());

  LSchedModel with_tl(DefaultLSchedConfig());
  with_tl.params()->CopyValuesFrom(*base->params());
  with_tl.FreezeForTransfer();
  LSchedModel without_tl(DefaultLSchedConfig());

  SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 6);
  TrainConfig tl_cfg;
  tl_cfg.learning_rate = 2e-3;
  tl_cfg.telemetry_prefix = "train.tl";
  TrainConfig scratch_cfg = tl_cfg;
  scratch_cfg.telemetry_prefix = "train.scratch";
  ReinforceTrainer tl_trainer(&with_tl, &engine, tl_cfg);
  ReinforceTrainer scratch_trainer(&without_tl, &engine, scratch_cfg);
  WorkloadFactory factory = TrainFactory(Benchmark::kSsb);
  Rng rng(cfg.seed + 7);
  std::vector<double> tl_returned, scratch_returned;
  for (int e = 0; e < total_episodes; ++e) {
    const auto w = factory(e, &rng);
    tl_returned.push_back(tl_trainer.TrainOneEpisode(w));
    scratch_returned.push_back(scratch_trainer.TrainOneEpisode(w));
  }
  // The curves themselves come from the event stream the trainers fed.
  const std::vector<double> tl_rewards = RewardSeries("train.tl", tl_returned);
  const std::vector<double> scratch_rewards =
      RewardSeries("train.scratch", scratch_returned);
  // Report the mean reward over each window (smoother curve).
  auto window_mean = [&](const std::vector<double>& v, int end) {
    const int begin = std::max(0, end - step);
    double s = 0.0;
    for (int i = begin; i < end && i < static_cast<int>(v.size()); ++i) {
      s += v[i];
    }
    return s / std::max(1, end - begin);
  };
  for (int done = step; done <= total_episodes; done += step) {
    const double tl_mean = window_mean(tl_rewards, done);
    const double scratch_mean = window_mean(scratch_rewards, done);
    std::printf("%10d %14.2f %14.2f\n", done, tl_mean, scratch_mean);
    PrintCsvRow("fig14b", "with_TL", cfg.eval_queries, cfg.threads,
                "mean_reward_ep" + std::to_string(done), tl_mean);
    PrintCsvRow("fig14b", "without_TL", cfg.eval_queries, cfg.threads,
                "mean_reward_ep" + std::to_string(done), scratch_mean);
  }
  return 0;
}

#ifndef LSCHED_BENCH_BENCH_COMMON_H_
#define LSCHED_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/trainer.h"
#include "exec/sim_engine.h"
#include "sched/decima.h"
#include "sched/selftune.h"
#include "util/perf_snapshot.h"
#include "workload/workload.h"

namespace lsched {
namespace bench {

/// Shared knobs for the figure-reproduction benchmarks. Episode counts are
/// scaled down from the paper's 5000/3000 real-execution episodes to a
/// simulator-friendly default; set LSCHED_EPISODES to change, and
/// LSCHED_MODEL_DIR to relocate the trained-model cache.
struct BenchConfig {
  int threads = 60;       ///< paper default
  int episodes = 80;      ///< per trained model (env: LSCHED_EPISODES)
  int eval_queries = 80;  ///< paper's test workloads
  double eval_interarrival = 0.05;
  uint64_t seed = 1234;
  std::string model_dir = "/tmp/lsched_models";

  static BenchConfig FromEnv();
};

/// Simulator with the default cost model at `threads`.
SimEngine MakeEngine(int threads, uint64_t seed = 7);

/// The §7.1 training-episode factory for `benchmark` (training split,
/// varying query counts and arrival rates).
WorkloadFactory TrainFactory(Benchmark benchmark);

/// Test workload (held-out split) per §7.1.
std::vector<QuerySubmission> TestWorkload(Benchmark benchmark,
                                          int num_queries, bool batch,
                                          double mean_interarrival,
                                          uint64_t seed);

/// Default LSched network configuration used across benchmarks; the
/// ablation toggles default to the full system.
LSchedConfig DefaultLSchedConfig();

/// Trains (or loads from the model cache) an LSched model for `benchmark`
/// with the given config. `variant` tags the cache entry (e.g. "full",
/// "nogat"). Returns the trained model.
std::unique_ptr<LSchedModel> TrainedLSched(const BenchConfig& bench,
                                           Benchmark benchmark,
                                           const std::string& variant,
                                           LSchedConfig config,
                                           int episodes_override = -1,
                                           LSchedModel* warm_start = nullptr);

/// Trains (or loads) a Decima model for `benchmark`.
std::unique_ptr<DecimaModel> TrainedDecima(const BenchConfig& bench,
                                           Benchmark benchmark,
                                           int episodes_override = -1);

/// Tunes SelfTune's hyper-parameters on training workloads of `benchmark`.
SelfTuneParams TunedSelfTune(const BenchConfig& bench, Benchmark benchmark,
                             int iterations = 12);

/// Standard machine-readable output schema shared by the figure benches:
/// one header line, then one row per (scheduler, metric) measurement.
/// Columns: figure,scheduler,queries,threads,metric,value
void PrintCsvHeader();
void PrintCsvRow(const std::string& figure, const std::string& scheduler,
                 int queries, int threads, const std::string& metric,
                 double value);

/// Prints "name: p10 p20 ... p100" of per-query durations (the CDF rows of
/// Figs. 8-10) plus the mean.
void PrintCdfRow(const std::string& name,
                 const std::vector<double>& latencies);

/// Prints a one-line summary and returns the mean.
double PrintAvgRow(const std::string& name, const EpisodeResult& result);

/// Writes `snap` (provenance pre-filled by MakePerfSnapshot) to
/// $LSCHED_BENCH_OUT if set, else BENCH_<name>.json in the working
/// directory — the uniform perf-trajectory emission every bench shares so
/// tools/bench_compare can diff any two runs. Prints the path written.
bool WriteBenchSnapshot(const PerfSnapshot& snap);

/// The full Figs. 8/9/10 experiment: trains LSched and Decima on the
/// training split of `benchmark`, tunes SelfTune, then prints the CDF of
/// average query duration for every paper competitor under streaming and
/// batched test workloads, plus LSched's improvement over Decima.
/// `include_fifo` matches Fig. 8 (FIFO is dropped after TPCH).
void RunHeadlineComparison(const BenchConfig& bench, Benchmark benchmark,
                           bool include_fifo);

}  // namespace bench
}  // namespace lsched

#endif  // LSCHED_BENCH_BENCH_COMMON_H_

// Reproduces Figure 9: CDF of average query duration on SSB (streaming and
// batching). Paper shape: LSched best but with a smaller gap than TPCH
// because SSB's max scale factor (50) makes queries lighter; FIFO omitted
// after Fig. 8.
#include "bench/bench_common.h"

int main() {
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("Figure 9 — SSB streaming/batching comparison\n");
  RunHeadlineComparison(cfg, lsched::Benchmark::kSsb, /*include_fifo=*/false);
  return 0;
}

// Reproduces Figure 1: the motivating example. One query with five select
// operators and one join, scheduled on 5 threads by (1) critical-path
// aggressive pipelining, (2) a Decima-style packer without pipelining, and
// (3) LSched with a learned pipeline degree. Paper shape: total times
// 23 (critical path) vs 27 (Decima) vs 20 (LSched) — learned moderate
// pipelining beats both aggressive and none.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "exec/scheduling_context.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "util/logging.h"

namespace lsched {
namespace {

/// Q1 of Figure 1: two pipelineable select chains feeding a join.
QueryPlan Fig1Query() {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions src;
  src.input_rows = 120000;
  src.selectivity = 0.8;
  const int o1 = b.AddSource(OperatorType::kSelect, 0, src);
  PlanBuilder::NodeOptions mid;
  mid.selectivity = 0.8;
  const int o2 = b.AddOp(OperatorType::kSelect, {o1}, mid);
  const int o3 = b.AddOp(OperatorType::kSelect, {o2}, mid);
  const int build = b.AddOp(OperatorType::kBuildHash, {o3});

  PlanBuilder::NodeOptions src2;
  src2.input_rows = 160000;
  src2.selectivity = 0.8;
  const int o4 = b.AddSource(OperatorType::kSelect, 1, src2);
  const int o5 = b.AddOp(OperatorType::kSelect, {o4}, mid);
  PlanBuilder::NodeOptions join;
  join.selectivity = 1.0;
  b.AddOp(OperatorType::kProbeHash, {o5, build}, join);  // o6
  auto plan = b.Build();
  LSCHED_CHECK(plan.ok());
  return std::move(plan).value();
}

/// Decima-style: packs operators one at a time, no pipelining (an operator
/// runs only after all its producers completed).
class NoPipeliningScheduler : public Scheduler {
 public:
  std::string name() const override { return "NoPipelining"; }
  SchedulingDecision Schedule(const SchedulingEvent&,
                              const SchedulingContext& ctx) override {
    SchedulingDecision d;
    for (QueryState* q : ctx.queries()) {
      for (int op : q->SchedulableOps()) {
        bool producers_done = true;
        for (int e : q->plan().node(op).in_edges) {
          producers_done &= q->op_completed(q->plan().edge(e).producer);
        }
        if (producers_done) {
          d.pipelines.push_back(PipelineChoice{q->id(), op, 1});
        }
      }
    }
    return d;
  }
};

}  // namespace
}  // namespace lsched

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  std::printf("Figure 1 — motivating example: one 6-operator query, 5 "
              "threads\n");
  std::printf("(paper: critical path 23, Decima-style 27, LSched 20 time "
              "units)\n\n");

  const BenchConfig cfg = BenchConfig::FromEnv();
  SimEngineConfig ecfg;
  ecfg.num_threads = 5;
  SimEngine engine(ecfg);

  std::vector<QuerySubmission> workload;
  workload.push_back({Fig1Query(), 0.0});

  CriticalPathScheduler cp;
  NoPipeliningScheduler nopipe;
  const EpisodeResult r_cp = engine.Run(workload, &cp);
  const EpisodeResult r_np = engine.Run(workload, &nopipe);

  // LSched: train a small model on this single-query workload shape. The
  // figure isolates the pipelining decision (all three schedulers get the
  // whole 5-thread pool), so the parallelism head is pinned to 100%.
  LSchedConfig lcfg = DefaultLSchedConfig();
  lcfg.predict_parallelism = false;
  LSchedModel model(lcfg);
  {
    SimEngineConfig tcfg_engine;
    tcfg_engine.num_threads = 5;
    SimEngine train_engine(tcfg_engine);
    TrainConfig tcfg;
    // A single deterministic query: episodes are tiny (~a dozen decisions),
    // so train longer and explore less than in the workload benchmarks.
    tcfg.episodes = std::max(cfg.episodes, 300);
    tcfg.entropy_coef = 0.003;
    tcfg.learning_rate = 2e-3;
    ReinforceTrainer trainer(&model, &train_engine, tcfg);
    trainer.Train([](int, Rng*) {
      std::vector<QuerySubmission> w;
      w.push_back({Fig1Query(), 0.0});
      return w;
    });
  }
  LSchedAgent lsched(&model);
  const EpisodeResult r_ls = engine.Run(workload, &lsched);

  std::printf("%-24s makespan=%7.3fs (aggressive pipelining)\n",
              "CriticalPath", r_cp.makespan);
  std::printf("%-24s makespan=%7.3fs (no pipelining, Decima-style)\n",
              "NoPipelining", r_np.makespan);
  std::printf("%-24s makespan=%7.3fs (learned pipeline degree)\n", "LSched",
              r_ls.makespan);
  std::printf("\nShape check (learned degree beats both extremes): "
              "LSched <= min(CriticalPath, NoPipelining) : %s\n",
              r_ls.makespan <=
                      std::min(r_cp.makespan, r_np.makespan) + 1e-9
                  ? "yes"
                  : "no");
  return 0;
}

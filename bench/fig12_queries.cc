// Reproduces Figure 12: average query duration while varying the number of
// (a) streaming and (b) batched queries from 20 to 100 at 60 threads.
// Paper shape: schedulers are close at small counts; past the thread count
// they degrade, with LSched degrading most gracefully.
#include <cstdio>

#include "bench/bench_common.h"
#include "sched/heuristics.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  for (const bool batch : {false, true}) {
    std::printf("\nFigure 12%s — avg query duration (sec) vs #%s queries "
                "(TPCH, %d threads)\n",
                batch ? "b" : "a", batch ? "batched" : "streaming",
                cfg.threads);
    std::printf("%8s %10s %10s %10s %10s %10s\n", "queries", "LSched",
                "Decima", "Quickstep", "SelfTune", "Fair");
    for (int n : {20, 40, 60, 80, 100}) {
      SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 4);
      const auto workload = TestWorkload(
          Benchmark::kTpch, n, batch, cfg.eval_interarrival, cfg.seed + 101);
      LSchedAgent lsched(lsched_model.get());
      DecimaScheduler decima(decima_model.get());
      QuickstepScheduler quickstep;
      SelfTuneScheduler selftune(st_params);
      FairScheduler fair;
      std::printf("%8d", n);
      for (Scheduler* s : std::initializer_list<Scheduler*>{
               &lsched, &decima, &quickstep, &selftune, &fair}) {
        std::printf(" %10.3f", engine.Run(workload, s).avg_latency);
      }
      std::printf("\n");
    }
  }
  return 0;
}

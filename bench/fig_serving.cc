// Serving-mode comparison: every policy drives the ServingDaemon's
// deterministic SimEngine mode over the same multi-tenant online-arrival
// script (tenant weights 1/2/3, mixed priority classes, bounded admission),
// and we report mean and p99 completed-query latency per policy, plus the
// canonical four-bucket latency decomposition (admission wait / queue wait /
// service time / stall time, DESIGN.md §8.2) averaged over terminal
// queries, so the figure shows not just how much each policy waits but
// *where* the waiting happens. The run
// also emits BENCH_serving.json so the serving-path perf trajectory has a
// machine-readable baseline snapshot.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sched/guarded_policy.h"
#include "sched/heuristics.h"
#include "serve/serving_daemon.h"

namespace lsched {
namespace bench {
namespace {

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * (xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct PolicyRow {
  std::string name;
  double mean = 0.0;
  double p99 = 0.0;
  int64_t completed = 0;
  int64_t shed = 0;
  // Mean per-query latency decomposition (seconds) over terminal queries
  // with a valid breakdown — where each completed query's wall time went
  // under this policy (segments sum to the mean decomposed latency).
  double mean_admission_wait = 0.0;
  double mean_queue_wait = 0.0;
  double mean_service_time = 0.0;
  double mean_stall_time = 0.0;
};

ScriptedIngress ServingScript(const BenchConfig& bench) {
  // The TPCH streaming test split, re-tagged for serving: three tenants in
  // round-robin with weights 1/2/3 and a deterministic priority mix (every
  // 7th query high, every 3rd low).
  const auto workload =
      TestWorkload(Benchmark::kTpch, bench.eval_queries, /*batch=*/false,
                   bench.eval_interarrival, bench.seed + 99);
  std::vector<QueryPlan> plans;
  std::vector<IngressEvent> events;
  for (size_t i = 0; i < workload.size(); ++i) {
    QueryTag tag;
    tag.tenant = static_cast<TenantId>(i % 3);
    if (i % 7 == 3) {
      tag.priority = QueryPriority::kHigh;
    } else if (i % 3 == 1) {
      tag.priority = QueryPriority::kLow;
    }
    plans.push_back(workload[i].plan);
    events.push_back(
        IngressEvent::Submit(workload[i].arrival_time, static_cast<int>(i),
                             tag));
  }
  return ScriptedIngress(std::move(events), std::move(plans));
}

PolicyRow RunPolicy(const BenchConfig& bench, const ScriptedIngress& script,
                    const std::string& name, Scheduler* scheduler) {
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 32;  // bounded admission: overload sheds
  cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  cfg.sim.num_threads = bench.threads;
  cfg.sim.seed = bench.seed + 7;
  ServingDaemon daemon(cfg);
  const EpisodeResult r = daemon.RunScript(script, scheduler);

  PolicyRow row;
  row.name = name;
  row.mean = r.avg_latency;
  row.p99 = Percentile(r.query_latencies, 0.99);
  row.completed = static_cast<int64_t>(r.query_latencies.size());
  row.shed = r.num_queries_shed;
  if (r.num_queries_decomposed > 0) {
    const double n = static_cast<double>(r.num_queries_decomposed);
    row.mean_admission_wait = 1e-9 * r.sum_admission_wait_ns / n;
    row.mean_queue_wait = 1e-9 * r.sum_queue_wait_ns / n;
    row.mean_service_time = 1e-9 * r.sum_service_time_ns / n;
    row.mean_stall_time = 1e-9 * r.sum_stall_time_ns / n;
  }
  std::printf("%-10s mean %8.4fs  p99 %8.4fs  completed %3lld  shed %3lld  "
              "[adm %6.4fs  queue %6.4fs  svc %6.4fs  stall %6.4fs]\n",
              name.c_str(), row.mean, row.p99,
              static_cast<long long>(row.completed),
              static_cast<long long>(row.shed), row.mean_admission_wait,
              row.mean_queue_wait, row.mean_service_time,
              row.mean_stall_time);
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace lsched

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("Serving — online multi-tenant comparison (%d queries, "
              "%d threads, admission bound 32)\n",
              cfg.eval_queries, cfg.threads);

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  const ScriptedIngress script = ServingScript(cfg);

  LSchedAgent lsched_agent(lsched_model.get());
  GuardedPolicy lsched_sched(&lsched_agent);  // as deployed: guarded
  DecimaScheduler decima(decima_model.get());
  QuickstepScheduler quickstep;
  SelfTuneScheduler selftune(st_params);
  FairScheduler fair;
  FifoScheduler fifo;
  SjfScheduler sjf;

  std::vector<std::pair<std::string, Scheduler*>> schedulers = {
      {"LSched", &lsched_sched}, {"Decima", &decima},
      {"Quickstep", &quickstep}, {"SelfTune", &selftune},
      {"Fair", &fair},           {"SJF", &sjf},
      {"FIFO", &fifo}};

  std::vector<PolicyRow> rows;
  for (auto& [name, sched] : schedulers) {
    rows.push_back(RunPolicy(cfg, script, name, sched));
  }

  double best_heuristic = 1e300;
  std::string best_name;
  for (const PolicyRow& r : rows) {
    // Workload-tuned baselines (Decima is trained, SelfTune tunes its
    // hyper-parameters on the training split) are reported in the table
    // but the headline delta is against the untuned heuristics, matching
    // how the figure benches frame the paper's claims.
    if (r.name == "LSched" || r.name == "Decima" || r.name == "SelfTune") {
      continue;
    }
    if (r.mean < best_heuristic) {
      best_heuristic = r.mean;
      best_name = r.name;
    }
  }
  const double lsched_mean = rows.front().mean;
  std::printf("LSched vs best untuned heuristic (%s): %+.1f%%\n",
              best_name.c_str(),
              100.0 * (best_heuristic - lsched_mean) / best_heuristic);

  // Perf-trajectory snapshot in the uniform bench_common schema (flat
  // metric keys, build/machine provenance embedded) so bench_compare can
  // diff serving-path baselines across PRs.
  PerfSnapshot snap = MakePerfSnapshot("serving");
  snap.Add("queries", cfg.eval_queries);
  snap.Add("threads", cfg.threads);
  snap.Add("tenants", 3);
  snap.Add("admission_bound", 32);
  for (const PolicyRow& r : rows) {
    snap.Add(r.name + ".mean_latency", r.mean);
    snap.Add(r.name + ".p99_latency", r.p99);
    snap.Add(r.name + ".completed", static_cast<double>(r.completed));
    snap.Add(r.name + ".shed", static_cast<double>(r.shed));
    snap.Add(r.name + ".mean_admission_wait", r.mean_admission_wait);
    snap.Add(r.name + ".mean_queue_wait", r.mean_queue_wait);
    snap.Add(r.name + ".mean_service_time", r.mean_service_time);
    snap.Add(r.name + ".mean_stall_time", r.mean_stall_time);
  }
  return WriteBenchSnapshot(snap) ? 0 : 1;
}

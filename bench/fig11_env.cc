// Reproduces Figure 11: (a) average query duration while scaling worker
// threads 20 -> 100 and (b) while varying the mean inter-query arrival gap.
// Paper shape: all scale with threads; Fair catches up at very high thread
// counts (smart decisions matter less when resources are abundant); the
// gap between LSched and the rest shrinks as arrivals become sparse.
#include <cstdio>

#include "bench/bench_common.h"
#include "sched/heuristics.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  std::printf("Figure 11a — avg query duration (sec) vs #worker threads "
              "(TPCH, %d streaming queries)\n", cfg.eval_queries);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "threads", "LSched",
              "Decima", "Quickstep", "SelfTune", "Fair");
  for (int threads : {20, 40, 60, 80, 100}) {
    SimEngine engine = MakeEngine(threads, cfg.seed + 2);
    const auto workload = TestWorkload(Benchmark::kTpch, cfg.eval_queries,
                                       false, cfg.eval_interarrival,
                                       cfg.seed + 99);
    LSchedAgent lsched(lsched_model.get());
    DecimaScheduler decima(decima_model.get());
    QuickstepScheduler quickstep;
    SelfTuneScheduler selftune(st_params);
    FairScheduler fair;
    std::printf("%8d", threads);
    for (Scheduler* s : std::initializer_list<Scheduler*>{
             &lsched, &decima, &quickstep, &selftune, &fair}) {
      std::printf(" %10.3f", engine.Run(workload, s).avg_latency);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 11b — avg query duration (sec) vs mean inter-query "
              "arrival gap (ms) (TPCH, %d streaming queries, %d threads)\n",
              cfg.eval_queries, cfg.threads);
  std::printf("%8s %10s %10s %10s %10s %10s\n", "gap_ms", "LSched",
              "Decima", "Quickstep", "SelfTune", "Fair");
  for (int gap_ms : {10, 50, 100, 200, 400}) {
    SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 3);
    const auto workload =
        TestWorkload(Benchmark::kTpch, cfg.eval_queries, false,
                     gap_ms / 1000.0, cfg.seed + 100);
    LSchedAgent lsched(lsched_model.get());
    DecimaScheduler decima(decima_model.get());
    QuickstepScheduler quickstep;
    SelfTuneScheduler selftune(st_params);
    FairScheduler fair;
    std::printf("%8d", gap_ms);
    for (Scheduler* s : std::initializer_list<Scheduler*>{
             &lsched, &decima, &quickstep, &selftune, &fair}) {
      std::printf(" %10.3f", engine.Run(workload, s).avg_latency);
    }
    std::printf("\n");
  }
  return 0;
}

// Reproduces Figure 8: CDF of average query duration under streaming and
// batched TPCH test workloads for LSched vs Decima / Quickstep / SelfTune /
// Fair / FIFO. Paper shape: LSched best; >= 35% (streaming) and >= 50%
// (batching) improvement over Decima; FIFO worst by far.
#include "bench/bench_common.h"

int main() {
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("Figure 8 — TPCH streaming/batching comparison\n");
  RunHeadlineComparison(cfg, lsched::Benchmark::kTpch, /*include_fifo=*/true);
  return 0;
}

// Per-event scheduler decision latency, old API vs new API (Scheduler API
// v2, DESIGN.md §9), for every shipped policy.
//
// "Old path" reproduces what engines did before the incremental
// SchedulingContext existed: rebuild a full SystemState snapshot at every
// scheduling round and call the legacy Schedule(event, state) overload —
// which, for the learned policies, is the autograd-tape forward. "New
// path" hands the policy the live context, so learned policies serve
// through cached per-query encodings and batched tape-free GEMMs.
//
// Emits the standard bench_common CSV schema
//   figure,scheduler,queries,threads,metric,value
// with per-policy metrics {old,new}_{p50,p99,mean}_us, speedup_p50,
// speedup_p99, and events. The acceptance gate for the fast path is the
// learned policies' speedup_p50/p99 >= 3.
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "exec/scheduling_context.h"
#include "sched/decima.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "util/math_util.h"

namespace lsched {
namespace {

/// Decorator that times every Schedule() call. On the old path it also
/// performs the snapshot materialization inside the timed region, because
/// that rebuild was part of every pre-v2 scheduling round.
class TimingScheduler : public Scheduler {
 public:
  TimingScheduler(Scheduler* inner, bool old_path)
      : inner_(inner), old_path_(old_path) {}

  std::string name() const override { return inner_->name(); }
  void Reset() override { inner_->Reset(); }
  void OnQueryCompleted(QueryId query, double latency) override {
    inner_->OnQueryCompleted(query, latency);
  }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    const auto t0 = std::chrono::steady_clock::now();
    SchedulingDecision decision;
    if (old_path_) {
      const SystemState snapshot = ctx.MaterializeSnapshot();
      decision = inner_->Schedule(event, snapshot);
    } else {
      decision = inner_->Schedule(event, ctx);
    }
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us_.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
    return decision;
  }

  const std::vector<double>& latencies_us() const { return latencies_us_; }

 private:
  Scheduler* inner_;
  bool old_path_;
  std::vector<double> latencies_us_;
};

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  int events = 0;
};

LatencyStats RunOnce(Scheduler* policy, bool old_path,
                     const std::vector<QuerySubmission>& workload,
                     const bench::BenchConfig& cfg) {
  SimEngine engine = bench::MakeEngine(cfg.threads, cfg.seed + 9);
  TimingScheduler timing(policy, old_path);
  engine.Run(workload, &timing);
  LatencyStats stats;
  stats.events = static_cast<int>(timing.latencies_us().size());
  if (stats.events == 0) return stats;
  stats.p50_us = Percentile(timing.latencies_us(), 50.0);
  stats.p99_us = Percentile(timing.latencies_us(), 99.0);
  stats.mean_us = Mean(timing.latencies_us());
  return stats;
}

int ReadEnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

}  // namespace
}  // namespace lsched

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  const int num_queries = ReadEnvInt("LSCHED_SCHED_LATENCY_QUERIES", 40);

  // Untrained weights: decision latency does not depend on the values, only
  // on the network shapes and the serving machinery.
  LSchedModel lsched_model(DefaultLSchedConfig());
  DecimaModel decima_model(DecimaConfig{});

  struct NamedFactory {
    std::string name;
    std::function<std::unique_ptr<Scheduler>()> make;
  };
  const std::vector<NamedFactory> policies = {
      {"FIFO", [] { return std::make_unique<FifoScheduler>(); }},
      {"Fair", [] { return std::make_unique<FairScheduler>(); }},
      {"SJF", [] { return std::make_unique<SjfScheduler>(); }},
      {"HPF", [] { return std::make_unique<HpfScheduler>(); }},
      {"CriticalPath",
       [] { return std::make_unique<CriticalPathScheduler>(); }},
      {"Quickstep", [] { return std::make_unique<QuickstepScheduler>(); }},
      {"SelfTune", [] { return std::make_unique<SelfTuneScheduler>(); }},
      {"LSched",
       [&] { return std::make_unique<LSchedAgent>(&lsched_model); }},
      {"Decima",
       [&] { return std::make_unique<DecimaScheduler>(&decima_model); }},
  };

  const auto workload = TestWorkload(Benchmark::kTpch, num_queries, false,
                                     cfg.eval_interarrival, cfg.seed + 77);

  PerfSnapshot snap = MakePerfSnapshot("sched_latency");
  snap.Add("queries", num_queries);
  snap.Add("threads", cfg.threads);
  PrintCsvHeader();
  for (const NamedFactory& policy : policies) {
    // Fresh scheduler per path so per-policy caches never carry over.
    std::unique_ptr<Scheduler> old_sched = policy.make();
    const LatencyStats old_stats =
        RunOnce(old_sched.get(), /*old_path=*/true, workload, cfg);
    std::unique_ptr<Scheduler> new_sched = policy.make();
    const LatencyStats new_stats =
        RunOnce(new_sched.get(), /*old_path=*/false, workload, cfg);

    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "old_p50_us", old_stats.p50_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "old_p99_us", old_stats.p99_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "old_mean_us", old_stats.mean_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "new_p50_us", new_stats.p50_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "new_p99_us", new_stats.p99_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "new_mean_us", new_stats.mean_us);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "speedup_p50",
                new_stats.p50_us > 0.0 ? old_stats.p50_us / new_stats.p50_us
                                       : 0.0);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "speedup_p99",
                new_stats.p99_us > 0.0 ? old_stats.p99_us / new_stats.p99_us
                                       : 0.0);
    PrintCsvRow("micro_sched_latency", policy.name, num_queries, cfg.threads,
                "events", static_cast<double>(new_stats.events));

    snap.Add(policy.name + ".old_p50_us", old_stats.p50_us);
    snap.Add(policy.name + ".old_p99_us", old_stats.p99_us);
    snap.Add(policy.name + ".new_p50_us", new_stats.p50_us);
    snap.Add(policy.name + ".new_p99_us", new_stats.p99_us);
    snap.Add(policy.name + ".new_mean_us", new_stats.mean_us);
    snap.Add(policy.name + ".speedup_p50",
             new_stats.p50_us > 0.0 ? old_stats.p50_us / new_stats.p50_us
                                    : 0.0);
  }
  return WriteBenchSnapshot(snap) ? 0 : 1;
}

// Reproduces Figure 10: CDF of average query duration on JOB (streaming and
// batching). Paper shape: LSched's gain is larger than on TPCH/SSB
// (>= 38% / 59% over Decima) because JOB's join-heavy queries (up to 17
// joins) reward careful scheduling.
#include "bench/bench_common.h"

int main() {
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("Figure 10 — JOB streaming/batching comparison\n");
  RunHeadlineComparison(cfg, lsched::Benchmark::kJob, /*include_fifo=*/false);
  return 0;
}

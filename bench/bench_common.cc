#include "bench/bench_common.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "sched/heuristics.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {
namespace bench {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig cfg;
  if (const char* e = std::getenv("LSCHED_EPISODES")) {
    cfg.episodes = std::max(1, std::atoi(e));
  }
  if (const char* e = std::getenv("LSCHED_THREADS")) {
    cfg.threads = std::max(1, std::atoi(e));
  }
  if (const char* e = std::getenv("LSCHED_EVAL_QUERIES")) {
    cfg.eval_queries = std::max(1, std::atoi(e));
  }
  if (const char* e = std::getenv("LSCHED_MODEL_DIR")) {
    cfg.model_dir = e;
  }
  ::mkdir(cfg.model_dir.c_str(), 0755);
  return cfg;
}

SimEngine MakeEngine(int threads, uint64_t seed) {
  SimEngineConfig cfg;
  cfg.num_threads = threads;
  cfg.seed = seed;
  return SimEngine(cfg);
}

WorkloadFactory TrainFactory(Benchmark benchmark) {
  // §7.1: streaming episodes with varying query counts and arrival rates.
  // Query counts are scaled to simulator-tractable sizes.
  return MakeEpisodeFactory(benchmark, 10, 30, 0.02, 0.12);
}

std::vector<QuerySubmission> TestWorkload(Benchmark benchmark,
                                          int num_queries, bool batch,
                                          double mean_interarrival,
                                          uint64_t seed) {
  WorkloadConfig cfg;
  cfg.benchmark = benchmark;
  cfg.split = WorkloadSplit::kTest;
  cfg.num_queries = num_queries;
  cfg.batch = batch;
  cfg.mean_interarrival_seconds = mean_interarrival;
  Rng rng(seed);
  return GenerateWorkload(cfg, &rng);
}

LSchedConfig DefaultLSchedConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 12;
  cfg.summary_dim = 12;
  cfg.head_hidden = 16;
  cfg.num_conv_layers = 2;
  return cfg;
}

namespace {
std::string CachePath(const BenchConfig& bench, Benchmark benchmark,
                      const std::string& kind, const std::string& variant,
                      int episodes) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s/%s_%s_%s_e%d_t%d.model",
                bench.model_dir.c_str(), kind.c_str(),
                BenchmarkName(benchmark), variant.c_str(), episodes,
                bench.threads);
  return buf;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}
}  // namespace

std::unique_ptr<LSchedModel> TrainedLSched(const BenchConfig& bench,
                                           Benchmark benchmark,
                                           const std::string& variant,
                                           LSchedConfig config,
                                           int episodes_override,
                                           LSchedModel* warm_start) {
  const int episodes =
      episodes_override > 0 ? episodes_override : bench.episodes;
  auto model = std::make_unique<LSchedModel>(config);
  const std::string path =
      CachePath(bench, benchmark, "lsched", variant, episodes);
  if (FileExists(path) && model->Load(path).ok()) {
    std::fprintf(stderr, "[bench] loaded cached model %s\n", path.c_str());
    return model;
  }
  if (warm_start != nullptr) {
    model->params()->CopyValuesFrom(*warm_start->params());
    model->FreezeForTransfer();
  }
  SimEngine engine = MakeEngine(bench.threads, bench.seed);
  TrainConfig tcfg;
  tcfg.episodes = episodes;
  tcfg.learning_rate = 2e-3;
  tcfg.seed = bench.seed;
  std::fprintf(stderr, "[bench] training LSched(%s/%s) for %d episodes...\n",
               BenchmarkName(benchmark), variant.c_str(), episodes);
  ReinforceTrainer trainer(model.get(), &engine, tcfg);
  trainer.Train(TrainFactory(benchmark));
  if (warm_start != nullptr) model->UnfreezeAll();
  const Status st = model->Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "[bench] model save failed: %s\n",
                 st.ToString().c_str());
  }
  return model;
}

std::unique_ptr<DecimaModel> TrainedDecima(const BenchConfig& bench,
                                           Benchmark benchmark,
                                           int episodes_override) {
  const int episodes =
      episodes_override > 0 ? episodes_override : bench.episodes;
  auto model = std::make_unique<DecimaModel>(DecimaConfig{});
  const std::string path =
      CachePath(bench, benchmark, "decima", "full", episodes);
  if (FileExists(path)) {
    auto reader = BinaryReader::FromFile(path);
    if (reader.ok() && model->params()->Deserialize(&*reader).ok()) {
      std::fprintf(stderr, "[bench] loaded cached model %s\n", path.c_str());
      return model;
    }
  }
  SimEngine engine = MakeEngine(bench.threads, bench.seed);
  std::fprintf(stderr, "[bench] training Decima(%s) for %d episodes...\n",
               BenchmarkName(benchmark), episodes);
  DecimaTrainer trainer(model.get(), &engine, episodes, 2e-3, bench.seed);
  trainer.Train(TrainFactory(benchmark));
  BinaryWriter writer;
  model->params()->Serialize(&writer);
  (void)writer.SaveToFile(path);
  return model;
}

SelfTuneParams TunedSelfTune(const BenchConfig& bench, Benchmark benchmark,
                             int iterations) {
  SimEngine engine = MakeEngine(bench.threads, bench.seed);
  Rng rng(bench.seed ^ 0xFACE);
  std::vector<std::vector<QuerySubmission>> training;
  WorkloadFactory factory = TrainFactory(benchmark);
  for (int i = 0; i < 3; ++i) training.push_back(factory(i, &rng));
  std::fprintf(stderr, "[bench] tuning SelfTune(%s), %d iterations...\n",
               BenchmarkName(benchmark), iterations);
  return TuneSelfTune(&engine, training, iterations, &rng).best_params;
}

void PrintCsvHeader() {
  std::printf("figure,scheduler,queries,threads,metric,value\n");
}

void PrintCsvRow(const std::string& figure, const std::string& scheduler,
                 int queries, int threads, const std::string& metric,
                 double value) {
  std::printf("%s,%s,%d,%d,%s,%.9g\n", figure.c_str(), scheduler.c_str(),
              queries, threads, metric.c_str(), value);
}

void PrintCdfRow(const std::string& name,
                 const std::vector<double>& latencies) {
  std::printf("%-12s mean=%8.3f |", name.c_str(), Mean(latencies));
  for (int p = 10; p <= 100; p += 10) {
    std::printf(" p%d=%7.2f", p, Percentile(latencies, p));
  }
  std::printf("\n");
}

double PrintAvgRow(const std::string& name, const EpisodeResult& result) {
  std::printf("%-12s avg=%8.3f p90=%8.3f makespan=%8.3f actions=%d\n",
              name.c_str(), result.avg_latency, result.p90_latency,
              result.makespan, result.num_actions);
  return result.avg_latency;
}

bool WriteBenchSnapshot(const PerfSnapshot& snap) {
  const char* env = std::getenv("LSCHED_BENCH_OUT");
  const std::string path =
      env != nullptr && *env != '\0' ? env : "BENCH_" + snap.name + ".json";
  if (!WritePerfSnapshot(snap, path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s (%zu metrics, sha %s)\n", path.c_str(),
              snap.metrics.size(), snap.git_sha.c_str());
  return true;
}

void RunHeadlineComparison(const BenchConfig& bench, Benchmark benchmark,
                           bool include_fifo) {
  auto lsched_model =
      TrainedLSched(bench, benchmark, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(bench, benchmark);
  const SelfTuneParams st_params = TunedSelfTune(bench, benchmark);

  SimEngine engine = MakeEngine(bench.threads, bench.seed + 1);
  for (const bool batch : {false, true}) {
    std::printf("\n=== %s %s: CDF of avg query duration (sec), %d queries, "
                "%d threads ===\n",
                BenchmarkName(benchmark), batch ? "Batching" : "Streaming",
                bench.eval_queries, bench.threads);
    const auto workload =
        TestWorkload(benchmark, bench.eval_queries, batch,
                     bench.eval_interarrival, bench.seed + 99);

    LSchedAgent lsched(lsched_model.get());
    DecimaScheduler decima(decima_model.get());
    QuickstepScheduler quickstep;
    SelfTuneScheduler selftune(st_params);
    FairScheduler fair;
    FifoScheduler fifo;

    std::vector<std::pair<std::string, Scheduler*>> schedulers = {
        {"LSched", &lsched},     {"Decima", &decima},
        {"Quickstep", &quickstep}, {"SelfTune", &selftune},
        {"Fair", &fair}};
    if (include_fifo) schedulers.push_back({"FIFO", &fifo});

    double lsched_avg = 0.0, decima_avg = 0.0;
    for (auto& [name, sched] : schedulers) {
      const EpisodeResult r = engine.Run(workload, sched);
      PrintCdfRow(name, r.query_latencies);
      if (name == "LSched") lsched_avg = r.avg_latency;
      if (name == "Decima") decima_avg = r.avg_latency;
    }
    if (decima_avg > 0.0) {
      std::printf("LSched improvement over Decima: %.1f%%\n",
                  100.0 * (decima_avg - lsched_avg) / decima_avg);
    }
  }
}

}  // namespace bench
}  // namespace lsched

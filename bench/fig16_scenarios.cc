// Policy x scenario grid: every scheduling policy drives the
// ServingDaemon's deterministic SimEngine mode over every scenario preset
// (steady / diurnal / flash_crowd / drift_ramp / elastic / adversarial,
// workload/scenario.h), so one table answers "which policy degrades, and
// under which traffic shape". The adversarial preset is sharpened at bench
// time with the ResQ-style FindAdversarialMix search against the guarded
// LSched policy (LSCHED_ADV_ITERS hill-climb steps; 0 keeps the static
// preset). Emits BENCH_scenarios.json for the perf trajectory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sched/guarded_policy.h"
#include "sched/heuristics.h"
#include "serve/serving_daemon.h"
#include "workload/scenario.h"

namespace lsched {
namespace bench {
namespace {

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(p * (xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

struct CellRow {
  std::string scenario;
  std::string policy;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  int64_t completed = 0;
  int64_t shed = 0;
};

/// Rescales a preset's time axis by `ts` (rates shrink, times stretch) so
/// its base rate matches the bench's configured arrival rate
/// (1 / eval_interarrival) while keeping the burst/diurnal/drift shape.
/// At the default config ts == 1 and this is the identity.
ScenarioSpec RescaleSpecTime(ScenarioSpec spec, double ts) {
  spec.rate.base_rate /= ts;
  for (RatePhase& p : spec.rate.phases) {
    p.until *= ts;
    p.rate /= ts;
  }
  spec.rate.diurnal_period_seconds *= ts;
  for (RateBurst& b : spec.rate.bursts) {
    b.start *= ts;
    b.duration *= ts;
  }
  spec.drift.start_time *= ts;
  spec.drift.end_time *= ts;
  spec.thread_events = ScaleThreadEvents(spec.thread_events, ts);
  return spec;
}

CellRow RunCell(const BenchConfig& bench, const ScenarioSpec& spec,
                const ScriptedIngress& script, const std::string& policy_name,
                Scheduler* scheduler) {
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 32;  // bounded admission: overload sheds
  cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  cfg.sim.num_threads = bench.threads;
  cfg.sim.seed = bench.seed + 7;
  cfg.sim.thread_events = spec.thread_events;  // elasticity rides along
  ServingDaemon daemon(cfg);
  const EpisodeResult r = daemon.RunScript(script, scheduler);

  CellRow row;
  row.scenario = spec.name;
  row.policy = policy_name;
  row.mean = r.avg_latency;
  row.p50 = Percentile(r.query_latencies, 0.50);
  row.p99 = Percentile(r.query_latencies, 0.99);
  row.completed = static_cast<int64_t>(r.query_latencies.size());
  row.shed = r.num_queries_shed;
  std::printf("  %-11s %-10s mean %8.4fs  p50 %8.4fs  p99 %8.4fs  "
              "completed %3lld  shed %3lld\n",
              spec.name.c_str(), policy_name.c_str(), row.mean, row.p50,
              row.p99, static_cast<long long>(row.completed),
              static_cast<long long>(row.shed));
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace lsched

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();
  std::printf("Scenario grid — every policy x every preset (%d queries, "
              "%d threads, admission bound 32)\n",
              cfg.eval_queries, cfg.threads);

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  LSchedAgent lsched_agent(lsched_model.get());
  GuardedPolicy lsched_sched(&lsched_agent);  // as deployed: guarded
  DecimaScheduler decima(decima_model.get());
  QuickstepScheduler quickstep;
  SelfTuneScheduler selftune(st_params);
  FairScheduler fair;
  FifoScheduler fifo;
  SjfScheduler sjf;

  std::vector<std::pair<std::string, Scheduler*>> schedulers = {
      {"LSched", &lsched_sched}, {"Decima", &decima},
      {"Quickstep", &quickstep}, {"SelfTune", &selftune},
      {"Fair", &fair},           {"SJF", &sjf},
      {"FIFO", &fifo}};

  // Hill-climb budget for sharpening the adversarial preset against the
  // learned policy at bench time. 0 keeps the static preset (still a hard
  // skewed-mix + burst workload, just not policy-targeted).
  int adv_iters = 4;
  if (const char* env = std::getenv("LSCHED_ADV_ITERS")) {
    adv_iters = std::atoi(env);
  }

  std::vector<CellRow> rows;
  PerfSnapshot snap = MakePerfSnapshot("scenarios");
  snap.Add("queries", cfg.eval_queries);
  snap.Add("threads", cfg.threads);
  snap.Add("admission_bound", 32);

  const std::vector<std::string>& names = ScenarioNames();
  for (size_t si = 0; si < names.size(); ++si) {
    ScenarioSpec spec = *ScenarioByName(names[si]);
    spec.num_queries = cfg.eval_queries;
    // Presets are authored at a 20 q/s base rate; map that onto the bench's
    // configured arrival rate while preserving the traffic shape.
    spec = RescaleSpecTime(spec, cfg.eval_interarrival * spec.rate.base_rate);

    if (spec.name == "adversarial" && adv_iters > 0) {
      AdversarialSearchOptions opts;
      opts.iterations = adv_iters;
      opts.num_threads = cfg.threads;
      opts.seed = cfg.seed + 17;
      opts.eval_queries = cfg.eval_queries;
      const AdversarialMixResult adv =
          FindAdversarialMix(spec, &lsched_sched, opts);
      std::printf("adversarial search: regret %+.4fs vs %s after %d "
                  "episodes\n",
                  adv.regret, adv.best_heuristic.c_str(), adv.evaluations);
      spec.drift.kind = MixDriftKind::kNone;
      spec.drift.from.weights = adv.weights;
      snap.Add("adversarial.search_regret", adv.regret);
    }

    // One deterministic script per scenario, shared by every policy so the
    // grid compares schedulers, not sampling noise.
    Rng rng(cfg.seed + 31 * static_cast<uint64_t>(si));
    const ScriptedIngress script = CompileIngress(spec, &rng);

    for (auto& [policy_name, sched] : schedulers) {
      const CellRow row = RunCell(cfg, spec, script, policy_name, sched);
      rows.push_back(row);
      const std::string key = row.scenario + "." + row.policy;
      snap.Add(key + ".mean_latency", row.mean);
      snap.Add(key + ".p50_latency", row.p50);
      snap.Add(key + ".p99_latency", row.p99);
      snap.Add(key + ".completed", static_cast<double>(row.completed));
      snap.Add(key + ".shed", static_cast<double>(row.shed));
    }
  }

  // Headline: per scenario, LSched's mean-latency delta vs the best untuned
  // heuristic on that same scenario (negative = LSched ahead).
  for (const std::string& name : names) {
    double lsched_mean = 0.0;
    double best_heuristic = 1e300;
    std::string best_name;
    for (const CellRow& r : rows) {
      if (r.scenario != name) continue;
      if (r.policy == "LSched") lsched_mean = r.mean;
      if (r.policy == "Fair" || r.policy == "SJF" || r.policy == "FIFO") {
        if (r.mean < best_heuristic) {
          best_heuristic = r.mean;
          best_name = r.policy;
        }
      }
    }
    std::printf("%-11s LSched vs best heuristic (%s): %+.1f%%\n",
                name.c_str(), best_name.c_str(),
                100.0 * (lsched_mean - best_heuristic) / best_heuristic);
  }

  return WriteBenchSnapshot(snap) ? 0 : 1;
}

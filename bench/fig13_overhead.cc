// Reproduces Figure 13: (a) scheduling latency (the cost of running the
// policy itself) and (b) the number of scheduling actions the learned
// agents take, as the streaming TPCH workload grows 20 -> 100 queries.
// Paper shape: learned schedulers cost orders of magnitude more per
// decision than heuristics (neural network inference) but the total is
// still ~100x smaller than the execution time it saves; actions grow with
// the query count into the thousands.
//
// Decision latency comes from the obs metrics registry (the
// `sched.decision_seconds` histogram recorded around every Schedule()
// call) rather than ad-hoc external timing, and is emitted in the
// standard bench_common CSV schema:
//   figure,scheduler,queries,threads,metric,value
// with metrics decision_p50_ms / decision_p99_ms / decision_mean_ms /
// sched_total_ms_per_query / actions.
#include <cstdio>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "sched/heuristics.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  if (!obs::Enabled()) {
    std::fprintf(stderr,
                 "[bench] warning: observability is disabled (LSCHED_OBS); "
                 "decision percentiles will read 0\n");
  }

  PrintCsvHeader();
  for (int n : {20, 40, 60, 80, 100}) {
    SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 5);
    const auto workload = TestWorkload(Benchmark::kTpch, n, false,
                                       cfg.eval_interarrival, cfg.seed + 102);
    LSchedAgent lsched(lsched_model.get());
    DecimaScheduler decima(decima_model.get());
    QuickstepScheduler quickstep;
    SelfTuneScheduler selftune(st_params);
    FairScheduler fair;
    const std::pair<const char*, Scheduler*> schedulers[] = {
        {"LSched", &lsched},       {"Decima", &decima},
        {"Quickstep", &quickstep}, {"SelfTune", &selftune},
        {"Fair", &fair}};
    for (const auto& [name, sched] : schedulers) {
      // Zero the registry so the histogram holds exactly this run.
      obs::MetricsRegistry::Global().ResetAll();
      const EpisodeResult r = engine.Run(workload, sched);
      const obs::HistogramSnapshot decisions =
          obs::MetricsRegistry::Global()
              .GetHistogram("sched.decision_seconds")
              ->TakeSnapshot();
      PrintCsvRow("fig13", name, n, cfg.threads, "decision_p50_ms",
                  1000.0 * decisions.Percentile(50));
      PrintCsvRow("fig13", name, n, cfg.threads, "decision_p99_ms",
                  1000.0 * decisions.Percentile(99));
      PrintCsvRow("fig13", name, n, cfg.threads, "decision_mean_ms",
                  1000.0 * decisions.Mean());
      PrintCsvRow("fig13", name, n, cfg.threads, "sched_total_ms_per_query",
                  1000.0 * r.scheduler_wall_seconds / static_cast<double>(n));
      PrintCsvRow("fig13", name, n, cfg.threads, "actions",
                  static_cast<double>(r.num_actions));
    }
  }
  return 0;
}

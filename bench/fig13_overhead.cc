// Reproduces Figure 13: (a) average scheduling latency per query (the cost
// of running the policy itself) and (b) the number of scheduling actions
// the learned agents take, as the streaming TPCH workload grows 20 -> 100
// queries. Paper shape: learned schedulers cost orders of magnitude more
// per decision than heuristics (neural network inference) but the total is
// still ~100x smaller than the execution time it saves; actions grow with
// the query count into the thousands.
#include <cstdio>

#include "bench/bench_common.h"
#include "sched/heuristics.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();

  auto lsched_model =
      TrainedLSched(cfg, Benchmark::kTpch, "full", DefaultLSchedConfig());
  auto decima_model = TrainedDecima(cfg, Benchmark::kTpch);
  const SelfTuneParams st_params = TunedSelfTune(cfg, Benchmark::kTpch);

  std::printf("Figure 13a — avg scheduling latency per query (msec, wall "
              "clock inside Schedule())\n");
  std::printf("%8s %10s %10s %10s %10s %10s\n", "queries", "LSched",
              "Decima", "Quickstep", "SelfTune", "Fair");
  std::printf("Figure 13b columns appended: #scheduling actions "
              "(LSched, Decima)\n");
  for (int n : {20, 40, 60, 80, 100}) {
    SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 5);
    const auto workload = TestWorkload(Benchmark::kTpch, n, false,
                                       cfg.eval_interarrival, cfg.seed + 102);
    LSchedAgent lsched(lsched_model.get());
    DecimaScheduler decima(decima_model.get());
    QuickstepScheduler quickstep;
    SelfTuneScheduler selftune(st_params);
    FairScheduler fair;
    std::printf("%8d", n);
    int lsched_actions = 0, decima_actions = 0;
    struct Entry {
      Scheduler* sched;
      bool is_lsched;
      bool is_decima;
    };
    for (const Entry& e : std::initializer_list<Entry>{
             {&lsched, true, false},
             {&decima, false, true},
             {&quickstep, false, false},
             {&selftune, false, false},
             {&fair, false, false}}) {
      const EpisodeResult r = engine.Run(workload, e.sched);
      std::printf(" %10.4f",
                  1000.0 * r.scheduler_wall_seconds / static_cast<double>(n));
      if (e.is_lsched) lsched_actions = r.num_actions;
      if (e.is_decima) decima_actions = r.num_actions;
    }
    std::printf("   | actions: %6d %6d\n", lsched_actions, decima_actions);
  }
  return 0;
}

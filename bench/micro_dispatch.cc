// Dispatch-throughput microbench: work-orders/sec through RealEngine's
// coordinator→worker handoff, locking vs lock-free worklist (DESIGN.md
// §12).
//
// The workload is deliberately dispatch-bound: many small work orders
// (tiny chunk size, cheap select+count plans, all queries arriving at
// once) so the handoff cost — not kernel time — dominates. The headline
// metric is <kind>.work_orders_per_sec (higher is better; bench_compare
// recognizes the per_sec suffix), plus the atomic/locking speedup.
//
// Emits the standard bench_common CSV schema and BENCH_dispatch.json for
// the perf-trajectory job. Env: LSCHED_DISPATCH_QUERIES (default 24),
// LSCHED_DISPATCH_REPS (default 3; best rep is reported),
// LSCHED_DISPATCH_THREADS (default 8).
//
// Caveat for reading speedup_vs_locking: the lock-free claim only pays
// when multiple workers and the coordinator genuinely run in parallel. On
// a single-CPU machine every handoff degrades to the cv-parked ping-pong
// path for BOTH kinds, and the ring's extra atomics make the atomic kind a
// few percent slower there — the number to watch on such boxes is that the
// gap stays small, not that it inverts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "exec/real_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "storage/table_generator.h"
#include "util/perf_snapshot.h"

namespace lsched {
namespace {

int g_threads = 8;
constexpr size_t kChunkRows = 64;  // small chunks → many work orders
constexpr int64_t kRows = 40000;

std::unique_ptr<Catalog> MakeCatalog(uint64_t seed = 42) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  TableSpec t;
  t.name = "t";
  t.num_rows = kRows;
  t.block_capacity = 64;  // one block ≈ one source work order
  t.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"v", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  if (!catalog->AddRelation(GenerateTable(t, &rng)).ok()) return nullptr;
  return catalog;
}

/// select(t, v in [lo, lo+0.5]) → COUNT(*): two streaming stages + a
/// blocking tail, one work order per source block.
QueryPlan CountPlan(const Catalog& catalog, double lo) {
  PlanBuilder b(&catalog);
  const RelationId t_id = *catalog.FindRelation("t");
  PlanBuilder::NodeOptions src;
  src.selectivity = 0.5;
  src.kernel.filter_column = 1;
  src.kernel.filter_lo = lo;
  src.kernel.filter_hi = lo + 0.5;
  const int scan = b.AddSource(OperatorType::kSelect, t_id, src);
  PlanBuilder::NodeOptions agg;
  agg.kernel.agg_fn = AggFn::kCount;
  agg.kernel.group_by_column = -1;
  agg.kernel.agg_column = 1;
  b.AddOp(OperatorType::kHashAggregate, {scan}, agg);
  auto plan = b.Build();
  if (!plan.ok()) std::abort();
  return std::move(plan).value();
}

struct DispatchStats {
  double work_orders_per_sec = 0.0;
  double wall_seconds = 0.0;
  int64_t work_orders = 0;
};

DispatchStats RunOnce(const Catalog* catalog, WorklistKind kind,
                      int num_queries) {
  std::vector<RealQuerySubmission> workload;
  for (int i = 0; i < num_queries; ++i) {
    RealQuerySubmission sub;
    sub.plan = CountPlan(*catalog, 0.04 * static_cast<double>(i % 12));
    sub.arrival_offset_seconds = 0.0;  // all at once: the pool stays hot
    workload.push_back(std::move(sub));
  }
  RealEngineConfig cfg;
  cfg.num_threads = g_threads;
  cfg.chunk_rows = kChunkRows;
  cfg.worklist = kind;
  RealEngine engine(catalog, cfg);
  FifoScheduler fifo;

  const auto t0 = std::chrono::steady_clock::now();
  const RealRunResult result = engine.Run(workload, &fifo);
  const auto t1 = std::chrono::steady_clock::now();

  DispatchStats stats;
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.work_orders = result.episode.num_work_orders_completed;
  if (stats.wall_seconds > 0.0) {
    stats.work_orders_per_sec =
        static_cast<double>(stats.work_orders) / stats.wall_seconds;
  }
  return stats;
}

int ReadEnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

}  // namespace
}  // namespace lsched

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const int num_queries = ReadEnvInt("LSCHED_DISPATCH_QUERIES", 24);
  const int reps = ReadEnvInt("LSCHED_DISPATCH_REPS", 3);
  g_threads = ReadEnvInt("LSCHED_DISPATCH_THREADS", 8);

  auto catalog = MakeCatalog();
  if (catalog == nullptr) return 1;

  // Warm-up: touch every block once so neither timed kind pays first-use
  // costs the other does not.
  (void)RunOnce(catalog.get(), WorklistKind::kLocking, 2);

  PrintCsvHeader();
  PerfSnapshot snap = MakePerfSnapshot("dispatch");
  snap.Add("queries", num_queries);
  snap.Add("threads", g_threads);

  double per_sec[2] = {0.0, 0.0};
  const std::pair<const char*, WorklistKind> kinds[2] = {
      {"locking", WorklistKind::kLocking},
      {"atomic", WorklistKind::kAtomic}};
  for (int k = 0; k < 2; ++k) {
    DispatchStats best;
    for (int rep = 0; rep < reps; ++rep) {
      const DispatchStats stats = RunOnce(catalog.get(), kinds[k].second,
                                          num_queries);
      if (stats.work_orders_per_sec > best.work_orders_per_sec) best = stats;
    }
    per_sec[k] = best.work_orders_per_sec;
    const std::string name = kinds[k].first;
    PrintCsvRow("micro_dispatch", name, num_queries, g_threads,
                "work_orders_per_sec", best.work_orders_per_sec);
    PrintCsvRow("micro_dispatch", name, num_queries, g_threads, "work_orders",
                static_cast<double>(best.work_orders));
    PrintCsvRow("micro_dispatch", name, num_queries, g_threads, "wall_seconds",
                best.wall_seconds);
    snap.Add(name + ".work_orders_per_sec", best.work_orders_per_sec);
    snap.Add(name + ".work_orders", static_cast<double>(best.work_orders));
  }
  const double speedup = per_sec[0] > 0.0 ? per_sec[1] / per_sec[0] : 0.0;
  PrintCsvRow("micro_dispatch", "atomic", num_queries, g_threads,
              "speedup_vs_locking", speedup);
  snap.Add("atomic.speedup_vs_locking", speedup);

  return WriteBenchSnapshot(snap) ? 0 : 1;
}

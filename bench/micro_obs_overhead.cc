// Measures the runtime cost of the observability layer (src/obs): runs the
// same SimEngine workload repeatedly with obs runtime-enabled and
// runtime-disabled (interleaved, so thermal/frequency drift cancels) and
// reports median wall times plus the enabled/disabled slowdown. The
// acceptance gate for the obs layer is a median slowdown under 3%.
//
// Note this compares the *runtime* gate inside one obs-compiled binary
// (obs::SetEnabled); a -DLSCHED_OBS=OFF build compiles every
// instrumentation site down to nothing and can only be cheaper.
//
// Env: LSCHED_OBS_BENCH_REPS (default 15 pairs), LSCHED_OBS_BENCH_QUERIES
// (default 48).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "obs/decision_log.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/heuristics.h"
#include "util/clock.h"

namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<int>(v) : fallback;
}

}  // namespace

int main() {
  using namespace lsched;
  using namespace lsched::bench;

  const int reps = EnvInt("LSCHED_OBS_BENCH_REPS", 15);
  const int queries = EnvInt("LSCHED_OBS_BENCH_QUERIES", 48);

  const auto workload =
      TestWorkload(Benchmark::kTpch, queries, /*batch=*/false,
                   /*mean_interarrival=*/0.05, /*seed=*/4242);

  // The drift monitor rides the decision-log back-fill path, so it is part
  // of the measured enabled-mode cost (the gate covers it too). SJF (not
  // Fair) annotates a predicted score, which keeps the monitor's quantile
  // sketches doing real work instead of skipping NaN-scored decisions.
  obs::DriftMonitor drift;
  drift.AttachToDecisionLog();

  auto run_once = [&](bool enabled) {
    obs::SetEnabled(enabled);
    SimEngine engine = MakeEngine(/*threads=*/60, /*seed=*/7);
    SjfScheduler sjf;
    Stopwatch sw;
    const EpisodeResult r = engine.Run(workload, &sjf);
    const double secs = sw.ElapsedSeconds();
    // Keep per-run obs state from accumulating across repetitions.
    obs::DecisionLog::Global().Clear();
    obs::Tracer::Global().Clear();
    obs::MetricsRegistry::Global().ResetAll();
    drift.Reset();
    if (r.query_latencies.size() != static_cast<size_t>(queries)) {
      std::fprintf(stderr, "unexpected: %zu/%d queries completed\n",
                   r.query_latencies.size(), queries);
      std::exit(1);
    }
    return secs;
  };

  // Warmup (both modes) before measuring.
  run_once(true);
  run_once(false);

  // Back-to-back pairs with alternating order; the per-pair ratio cancels
  // slow machine drift (frequency scaling, noisy neighbors) that a ratio
  // of independent medians does not.
  std::vector<double> on_secs, off_secs, ratios;
  for (int i = 0; i < reps; ++i) {
    double on, off;
    if (i % 2 == 0) {
      on = run_once(true);
      off = run_once(false);
    } else {
      off = run_once(false);
      on = run_once(true);
    }
    on_secs.push_back(on);
    off_secs.push_back(off);
    ratios.push_back(on / off);
  }
  obs::SetEnabled(true);

  const double on_med = Median(on_secs);
  const double off_med = Median(off_secs);
  const double slowdown_pct = 100.0 * (Median(ratios) - 1.0);

  std::printf("micro_obs_overhead: %d queries, %d reps per mode\n", queries,
              reps);
  std::printf("  obs compiled in : %s\n", obs::kCompiledIn ? "yes" : "no");
  std::printf("  median disabled : %9.4f ms\n", 1000.0 * off_med);
  std::printf("  median enabled  : %9.4f ms\n", 1000.0 * on_med);
  std::printf("  slowdown        : %+.2f%% (gate: < 3%%)\n", slowdown_pct);
  std::printf("  verdict         : %s\n",
              slowdown_pct < 3.0 ? "PASS" : "FAIL");
  return 0;
}

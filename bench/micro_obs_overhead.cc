// Measures the runtime cost of the observability layer (src/obs) in two
// phases, both interleaving the compared modes back-to-back so
// thermal/frequency drift cancels in the per-pair ratio:
//
//   1. episode: the same SimEngine workload with the whole obs runtime
//      enabled vs disabled (decision log, tracer, metrics, drift monitor).
//      Reported for trend-watching; machine-dependent, so not an exit
//      gate (matching the bench's historical behavior).
//   2. serving+trace: the same multi-tenant ServingDaemon script with obs
//      enabled on BOTH sides, comparing per-query lifetime-trace capture
//      on vs off. This isolates the marginal cost of the query-trace
//      subsystem (edge assembly, considered-but-skipped sets, fairness
//      annotations, QueryTraceLog publication) in its deployment shape.
//      ACCEPTANCE GATE: the median tracing slowdown must stay under 3%,
//      or the bench exits nonzero.
//
// Note both phases compare *runtime* switches inside one obs-compiled
// binary (obs::SetEnabled / QueryTraceLog::SetCapture); a -DLSCHED_OBS=OFF
// build compiles every instrumentation site down to nothing and can only
// be cheaper — under that build the bench reports the stub and passes
// trivially.
//
// Env: LSCHED_OBS_BENCH_REPS (default 41 pairs), LSCHED_OBS_BENCH_QUERIES
// (default 48).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_common.h"
#include "obs/decision_log.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/query_trace.h"
#include "obs/trace.h"
#include "sched/heuristics.h"
#include "serve/serving_daemon.h"
#include "util/clock.h"

namespace {

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]));
}

int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const long v = std::atol(env);
  return v > 0 ? static_cast<int>(v) : fallback;
}

struct PhaseResult {
  double on_med = 0.0;
  double off_med = 0.0;
  double slowdown_pct = 0.0;
};

// Runs `reps` interleaved on/off pairs of `run_once(bool)`. The reported
// slowdown is the ratio of per-mode *minimums*: OS jitter only ever adds
// time, so each minimum converges on that mode's true floor and their
// ratio is a far more stable estimator at a few-percent gate than a
// median of per-pair ratios (which inherits the jitter of both runs in
// every pair). Medians are still printed for context.
template <typename RunOnce>
PhaseResult MeasurePairs(int reps, RunOnce run_once) {
  // Warmup (both modes) before measuring.
  run_once(true);
  run_once(false);
  std::vector<double> on_secs, off_secs;
  for (int i = 0; i < reps; ++i) {
    double on, off;
    if (i % 2 == 0) {
      on = run_once(true);
      off = run_once(false);
    } else {
      off = run_once(false);
      on = run_once(true);
    }
    on_secs.push_back(on);
    off_secs.push_back(off);
  }
  PhaseResult r;
  r.on_med = Median(on_secs);
  r.off_med = Median(off_secs);
  const double on_min = *std::min_element(on_secs.begin(), on_secs.end());
  const double off_min = *std::min_element(off_secs.begin(), off_secs.end());
  r.slowdown_pct = 100.0 * (on_min / off_min - 1.0);
  return r;
}

void PrintPhase(const char* name, const char* off_label,
                const char* on_label, const PhaseResult& r) {
  std::printf("  [%s]\n", name);
  std::printf("    median %-9s: %9.4f ms\n", off_label, 1000.0 * r.off_med);
  std::printf("    median %-9s: %9.4f ms\n", on_label, 1000.0 * r.on_med);
  std::printf("    slowdown        : %+.2f%%\n", r.slowdown_pct);
}

}  // namespace

int main() {
  using namespace lsched;
  using namespace lsched::bench;

  const int reps = EnvInt("LSCHED_OBS_BENCH_REPS", 41);
  const int queries = EnvInt("LSCHED_OBS_BENCH_QUERIES", 48);

  std::printf("micro_obs_overhead: %d queries, %d reps per mode\n", queries,
              reps);
  std::printf("  obs compiled in : %s\n", obs::kCompiledIn ? "yes" : "no");
  PerfSnapshot snap = MakePerfSnapshot("obs_overhead");
  snap.Add("queries", queries);
  snap.Add("reps", reps);
  if (!obs::kCompiledIn) {
    // Every instrumentation site compiled to nothing; there is no runtime
    // switch to measure and the overhead is zero by construction.
    std::printf("  verdict         : PASS (compiled-out stub)\n");
    WriteBenchSnapshot(snap);
    return 0;
  }

  const auto workload =
      TestWorkload(Benchmark::kTpch, queries, /*batch=*/false,
                   /*mean_interarrival=*/0.05, /*seed=*/4242);

  // --- Phase 1: bare episode, whole obs runtime on vs off. ---
  // The drift monitor rides the decision-log back-fill path, so it is part
  // of the measured enabled-mode cost. SJF (not Fair) annotates a
  // predicted score, which keeps the monitor's quantile sketches doing
  // real work instead of skipping NaN-scored decisions.
  obs::DriftMonitor drift;
  drift.AttachToDecisionLog();

  auto clear_obs_state = [&]() {
    obs::DecisionLog::Global().Clear();
    obs::Tracer::Global().Clear();
    obs::MetricsRegistry::Global().ResetAll();
    obs::QueryTraceLog::Global().Clear();
    drift.Reset();
  };

  auto run_episode = [&](bool enabled) {
    obs::SetEnabled(enabled);
    SimEngine engine = MakeEngine(/*threads=*/60, /*seed=*/7);
    SjfScheduler sjf;
    Stopwatch sw;
    const EpisodeResult r = engine.Run(workload, &sjf);
    const double secs = sw.ElapsedSeconds();
    // Keep per-run obs state from accumulating across repetitions.
    clear_obs_state();
    if (r.query_latencies.size() != static_cast<size_t>(queries)) {
      std::fprintf(stderr, "unexpected: %zu/%d queries completed\n",
                   r.query_latencies.size(), queries);
      std::exit(1);
    }
    return secs;
  };
  const PhaseResult episode = MeasurePairs(reps, run_episode);
  PrintPhase("episode: obs on vs off (informational)", "disabled",
             "enabled", episode);

  // --- Phase 2: serving daemon, trace capture on vs off (GATED). ---
  // A deterministic multi-tenant script through ServingDaemon's SimEngine
  // mode, obs enabled on both sides: admission verdicts,
  // considered-but-skipped edges, fairness annotations, and QueryTraceLog
  // publication are the only delta between the two runs.
  std::vector<QueryPlan> plans;
  std::vector<IngressEvent> events;
  for (size_t i = 0; i < workload.size(); ++i) {
    QueryTag tag;
    tag.tenant = static_cast<TenantId>(i % 3);
    if (i % 7 == 3) tag.priority = QueryPriority::kHigh;
    if (i % 3 == 1) tag.priority = QueryPriority::kLow;
    plans.push_back(workload[i].plan);
    events.push_back(
        IngressEvent::Submit(workload[i].arrival_time, static_cast<int>(i),
                             tag));
  }
  const ScriptedIngress script(std::move(events), std::move(plans));

  auto run_serving = [&](bool capture) {
    obs::SetEnabled(true);
    obs::QueryTraceLog::Global().SetCapture(capture);
    ServingDaemonConfig cfg;
    cfg.policy.max_live_queries = 32;
    cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
    cfg.policy.tenant_slos = {{0, {0.5, 0.99}}, {1, {0.5, 0.99}},
                              {2, {0.5, 0.99}}};
    cfg.sim.num_threads = 60;
    cfg.sim.seed = 7;
    ServingDaemon daemon(cfg);
    SjfScheduler sjf;
    Stopwatch sw;
    const EpisodeResult r = daemon.RunScript(script, &sjf);
    const double secs = sw.ElapsedSeconds();
    if (capture && obs::QueryTraceLog::Global().size() == 0) {
      std::fprintf(stderr, "unexpected: tracing on but no traces captured\n");
      std::exit(1);
    }
    clear_obs_state();
    if (r.final_statuses.size() != workload.size()) {
      std::fprintf(stderr, "unexpected: %zu/%zu queries terminal\n",
                   r.final_statuses.size(), workload.size());
      std::exit(1);
    }
    return secs;
  };
  const PhaseResult serving = MeasurePairs(reps, run_serving);
  PrintPhase("serving: trace capture on vs off (gate: < 3%)", "no-trace",
             "tracing", serving);
  obs::SetEnabled(true);
  obs::QueryTraceLog::Global().SetCapture(true);

  snap.Add("episode.obs_on_med_ms", 1000.0 * episode.on_med);
  snap.Add("episode.obs_off_med_ms", 1000.0 * episode.off_med);
  snap.Add("episode.slowdown_pct", episode.slowdown_pct);
  snap.Add("serving.trace_on_med_ms", 1000.0 * serving.on_med);
  snap.Add("serving.trace_off_med_ms", 1000.0 * serving.off_med);
  snap.Add("serving.slowdown_pct", serving.slowdown_pct);
  WriteBenchSnapshot(snap);

  const bool pass = serving.slowdown_pct < 3.0;
  std::printf("  verdict         : %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

// Reproduces Figure 15: LSched variants, each with one key contribution
// removed, evaluated on the TPCH test workload. Paper shape (avg query
// duration vs full LSched): w/o triangle (tree) convolution >= 2x worse,
// w/o graph attention >= 1.5x worse, w/o pipelining prediction ~1.25x,
// w/o transfer learning ~1.1x.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace lsched;
  using namespace lsched::bench;
  const BenchConfig cfg = BenchConfig::FromEnv();

  SimEngine engine = MakeEngine(cfg.threads, cfg.seed + 8);
  const auto workload = TestWorkload(Benchmark::kTpch, cfg.eval_queries,
                                     false, cfg.eval_interarrival,
                                     cfg.seed + 99);

  // Full LSched is trained with a transfer-learning warm start from the SSB
  // model (the paper's complete variant is "trained with transfer
  // learning"); the w/o-TL variant trains from scratch.
  auto ssb_base =
      TrainedLSched(cfg, Benchmark::kSsb, "full", DefaultLSchedConfig());

  struct Variant {
    const char* name;
    LSchedConfig config;
    bool transfer;
  };
  LSchedConfig base = DefaultLSchedConfig();
  LSchedConfig no_gat = base;
  no_gat.use_gat = false;
  LSchedConfig no_tcn = base;
  no_tcn.use_tree_conv = false;
  LSchedConfig no_pipe = base;
  no_pipe.predict_pipeline = false;
  // The full variant trains with the TL warm start; every ablation trains
  // from scratch (a warm start from the full model would poison the
  // variants whose architecture toggles change which layers are used).
  const std::vector<Variant> variants = {
      {"LSched (full)", base, true},
      {"w/o TransferLearning", base, false},
      {"w/o PipelinePrediction", no_pipe, false},
      {"w/o GraphAttention", no_gat, false},
      {"w/o TreeConvolution", no_tcn, false},
  };

  std::printf("Figure 15 — LSched ablations on TPCH (%d streaming queries, "
              "%d threads)\n",
              cfg.eval_queries, cfg.threads);
  double full_avg = -1.0;
  for (const Variant& v : variants) {
    std::string tag = std::string("abl_") +
                      (v.transfer ? "tl_" : "scratch_") +
                      (v.config.use_gat ? "" : "nogat_") +
                      (v.config.use_tree_conv ? "" : "notcn_") +
                      (v.config.predict_pipeline ? "" : "nopipe_");
    auto model =
        TrainedLSched(cfg, Benchmark::kTpch, tag, v.config, -1,
                      v.transfer ? ssb_base.get() : nullptr);
    LSchedAgent agent(model.get());
    const EpisodeResult r = engine.Run(workload, &agent);
    if (full_avg < 0.0) full_avg = r.avg_latency;
    std::printf("%-26s avg=%8.3fs  (%.2fx of full)\n", v.name, r.avg_latency,
                full_avg > 0 ? r.avg_latency / full_avg : 0.0);
  }
  return 0;
}

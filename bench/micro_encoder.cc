// Micro-benchmarks of the learned scheduler's per-decision costs: feature
// extraction, query encoding (TCN+GAT vs GCN fallback), and the full
// predictor forward pass — the ingredients of the Fig. 13a overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "core/agent.h"
#include "core/encoder.h"
#include "core/predictor.h"
#include "workload/workload.h"

namespace lsched {
namespace {

struct Fixture {
  Fixture(int num_queries, bool use_tcn) {
    WorkloadConfig wcfg;
    wcfg.benchmark = Benchmark::kTpch;
    wcfg.num_queries = num_queries;
    wcfg.scale_factors = {10};
    Rng rng(5);
    auto workload = GenerateWorkload(wcfg, &rng);
    for (auto& sub : workload) {
      queries.push_back(
          std::make_unique<QueryState>(static_cast<QueryId>(queries.size()),
                                       std::move(sub.plan), 0.0));
    }
    state.threads.resize(60);
    for (int i = 0; i < 60; ++i) state.threads[static_cast<size_t>(i)].id = i;
    for (auto& q : queries) state.queries.push_back(q.get());

    LSchedConfig cfg;
    cfg.hidden_dim = 12;
    cfg.summary_dim = 12;
    cfg.head_hidden = 16;
    cfg.use_tree_conv = use_tcn;
    model = std::make_unique<LSchedModel>(cfg);
    extractor = std::make_unique<FeatureExtractor>(cfg.features);
    features = extractor->Extract(state);
  }

  std::vector<std::unique_ptr<QueryState>> queries;
  SystemState state;
  std::unique_ptr<LSchedModel> model;
  std::unique_ptr<FeatureExtractor> extractor;
  StateFeatures features;
};

void BM_FeatureExtraction(benchmark::State& s) {
  Fixture fx(static_cast<int>(s.range(0)), true);
  for (auto _ : s) {
    benchmark::DoNotOptimize(fx.extractor->Extract(fx.state));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(4)->Arg(16)->Arg(64);

void BM_EncodeState(benchmark::State& s) {
  Fixture fx(static_cast<int>(s.range(0)), true);
  for (auto _ : s) {
    Tape tape;
    benchmark::DoNotOptimize(EncodeState(fx.model.get(), fx.features, &tape));
  }
}
BENCHMARK(BM_EncodeState)->Arg(4)->Arg(16)->Arg(64);

void BM_EncodeStateGcn(benchmark::State& s) {
  Fixture fx(static_cast<int>(s.range(0)), false);
  for (auto _ : s) {
    Tape tape;
    benchmark::DoNotOptimize(EncodeState(fx.model.get(), fx.features, &tape));
  }
}
BENCHMARK(BM_EncodeStateGcn)->Arg(4)->Arg(16)->Arg(64);

void BM_FullPredictorForward(benchmark::State& s) {
  Fixture fx(static_cast<int>(s.range(0)), true);
  for (auto _ : s) {
    Tape tape;
    const EncodedState enc = EncodeState(fx.model.get(), fx.features, &tape);
    benchmark::DoNotOptimize(
        RunPredictor(fx.model.get(), fx.features, enc, &tape));
  }
}
BENCHMARK(BM_FullPredictorForward)->Arg(4)->Arg(16)->Arg(64);

void BM_AgentScheduleDecision(benchmark::State& s) {
  Fixture fx(static_cast<int>(s.range(0)), true);
  LSchedAgent agent(fx.model.get());
  SchedulingEvent event;
  for (auto _ : s) {
    benchmark::DoNotOptimize(agent.Schedule(event, fx.state));
  }
}
BENCHMARK(BM_AgentScheduleDecision)->Arg(4)->Arg(16)->Arg(64);

/// Median microseconds per call over `reps` timed invocations (after one
/// warmup). Manual timing rather than google-benchmark state so the same
/// numbers land in the perf-trajectory snapshot.
double MedianUsPerCall(const std::function<void()>& fn, int reps) {
  fn();
  std::vector<double> us;
  us.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(us.begin(), us.end());
  return us[us.size() / 2];
}

void WriteEncoderSnapshot() {
  const char* env = std::getenv("LSCHED_ENCODER_REPS");
  const int reps = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 30;
  Fixture tcn(16, /*use_tcn=*/true);
  Fixture gcn(16, /*use_tcn=*/false);
  PerfSnapshot snap = MakePerfSnapshot("encoder");
  snap.Add("queries", 16);
  snap.Add("reps", reps);
  snap.Add("extract.p50_us", MedianUsPerCall([&] {
             benchmark::DoNotOptimize(tcn.extractor->Extract(tcn.state));
           }, reps));
  snap.Add("encode_tcn.p50_us", MedianUsPerCall([&] {
             Tape tape;
             benchmark::DoNotOptimize(
                 EncodeState(tcn.model.get(), tcn.features, &tape));
           }, reps));
  snap.Add("encode_gcn.p50_us", MedianUsPerCall([&] {
             Tape tape;
             benchmark::DoNotOptimize(
                 EncodeState(gcn.model.get(), gcn.features, &tape));
           }, reps));
  snap.Add("forward.p50_us", MedianUsPerCall([&] {
             Tape tape;
             const EncodedState enc =
                 EncodeState(tcn.model.get(), tcn.features, &tape);
             benchmark::DoNotOptimize(
                 RunPredictor(tcn.model.get(), tcn.features, enc, &tape));
           }, reps));
  bench::WriteBenchSnapshot(snap);
}

}  // namespace
}  // namespace lsched

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  lsched::WriteEncoderSnapshot();
  return 0;
}
